#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace qc::graph {
namespace {

TEST(Graph, FromEdgesBasics) {
  std::vector<Edge> edges{{0, 1}, {1, 2}, {2, 0}};
  auto g = Graph::from_edges(3, edges);
  EXPECT_EQ(g.n(), 3u);
  EXPECT_EQ(g.m(), 3u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 0));
  EXPECT_EQ(g.degree(0), 2u);
}

TEST(Graph, DuplicateEdgesCoalesced) {
  std::vector<Edge> edges{{0, 1}, {1, 0}, {0, 1}};
  auto g = Graph::from_edges(2, edges);
  EXPECT_EQ(g.m(), 1u);
}

TEST(Graph, RejectsSelfLoopsAndOutOfRange) {
  std::vector<Edge> loop{{1, 1}};
  EXPECT_THROW(Graph::from_edges(2, loop), InvalidArgumentError);
  std::vector<Edge> oor{{0, 5}};
  EXPECT_THROW(Graph::from_edges(2, oor), InvalidArgumentError);
}

TEST(Graph, NeighborsAreSorted) {
  std::vector<Edge> edges{{3, 0}, {3, 2}, {3, 1}};
  auto g = Graph::from_edges(4, edges);
  auto nb = g.neighbors(3);
  EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
  EXPECT_EQ(nb.size(), 3u);
}

TEST(Graph, EdgesRoundTrip) {
  auto g = make_cycle(5);
  auto edges = g.edges();
  EXPECT_EQ(edges.size(), 5u);
  auto g2 = Graph::from_edges(5, edges);
  EXPECT_EQ(g2.m(), g.m());
}

TEST(Graph, Connectivity) {
  EXPECT_TRUE(make_path(6).is_connected());
  std::vector<Edge> disc{{0, 1}, {2, 3}};
  EXPECT_FALSE(Graph::from_edges(4, disc).is_connected());
}

TEST(GraphBuilder, PathBetween) {
  GraphBuilder b(2);
  auto inner = b.add_path_between(0, 1, 3);
  EXPECT_EQ(inner.size(), 3u);
  auto g = b.build();
  EXPECT_EQ(g.n(), 5u);
  EXPECT_EQ(bfs(g, 0).dist[1], 4u);
}

TEST(GraphBuilder, PathBetweenZeroLength) {
  GraphBuilder b(2);
  b.add_path_between(0, 1, 0);
  auto g = b.build();
  EXPECT_TRUE(g.has_edge(0, 1));
}

TEST(GraphBuilder, CliqueAndStar) {
  GraphBuilder b(5);
  std::vector<NodeId> nodes{0, 1, 2};
  b.add_clique(nodes);
  std::vector<NodeId> leaves{3, 4};
  b.add_star(2, leaves);
  auto g = b.build();
  EXPECT_TRUE(g.has_edge(0, 1) && g.has_edge(1, 2) && g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 3) && g.has_edge(2, 4));
}

TEST(Bfs, DistancesOnPath) {
  auto g = make_path(6);
  auto r = bfs(g, 0);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(r.dist[v], v);
  EXPECT_EQ(r.ecc, 5u);
}

TEST(Bfs, ParentIsMinIdPreviousLevel) {
  // Diamond: 0-1, 0-2, 1-3, 2-3. Node 3's previous-level neighbors are
  // {1, 2}; the parent rule must pick 1.
  std::vector<Edge> edges{{0, 1}, {0, 2}, {1, 3}, {2, 3}};
  auto g = Graph::from_edges(4, edges);
  auto r = bfs(g, 0);
  EXPECT_EQ(r.parent[3], 1u);
  EXPECT_EQ(r.parent[0], kInvalidNode);
}

TEST(Diameter, KnownFamilies) {
  EXPECT_EQ(diameter(make_path(10)), 9u);
  EXPECT_EQ(diameter(make_cycle(10)), 5u);
  EXPECT_EQ(diameter(make_cycle(11)), 5u);
  EXPECT_EQ(diameter(make_star(8)), 2u);
  EXPECT_EQ(diameter(make_complete(6)), 1u);
  EXPECT_EQ(diameter(make_grid(3, 4)), 5u);
  EXPECT_EQ(diameter(make_barbell(4, 3)), 5u);
}

TEST(Diameter, MatchesApspMax) {
  Rng rng(5);
  auto g = make_connected_er(40, 0.08, rng);
  auto d = apsp(g);
  std::uint32_t best = 0;
  for (const auto& row : d) {
    for (auto x : row) best = std::max(best, x);
  }
  EXPECT_EQ(diameter(g), best);
}

TEST(Eccentricity, StarCenterVsLeaf) {
  auto g = make_star(6);
  EXPECT_EQ(eccentricity(g, 0), 1u);
  EXPECT_EQ(eccentricity(g, 1), 2u);
}

TEST(MaxCrossDistance, Bipartite) {
  auto g = make_path(4);  // 0-1-2-3
  std::vector<NodeId> us{0}, vs{3};
  EXPECT_EQ(max_cross_distance(g, us, vs), 3u);
}

TEST(BfsTree, StructureOnGrid) {
  auto g = make_grid(3, 3);
  auto t = bfs_tree(g, 0);
  EXPECT_EQ(t.root, 0u);
  EXPECT_EQ(t.height, 4u);
  // Every non-root node's parent is exactly one level shallower.
  for (NodeId v = 1; v < g.n(); ++v) {
    EXPECT_EQ(t.depth[t.parent[v]] + 1, t.depth[v]);
  }
  // Child lists are consistent with parents.
  std::size_t child_count = 0;
  for (NodeId v = 0; v < g.n(); ++v) {
    for (NodeId c : t.children[v]) {
      EXPECT_EQ(t.parent[c], v);
      ++child_count;
    }
  }
  EXPECT_EQ(child_count, g.n() - 1);
}

TEST(DfsNumbering, EulerTourOnPath) {
  auto g = make_path(4);
  auto t = bfs_tree(g, 0);
  auto num = dfs_numbering(t);
  EXPECT_EQ(num.walk_length(), 6u);  // 2*(4-1)
  EXPECT_EQ(num.tau[0], 0u);
  EXPECT_EQ(num.tau[1], 1u);
  EXPECT_EQ(num.tau[2], 2u);
  EXPECT_EQ(num.tau[3], 3u);
  EXPECT_EQ(num.walk.front(), 0u);
  EXPECT_EQ(num.walk.back(), 0u);
}

TEST(DfsNumbering, WalkMovesAlongTreeEdges) {
  Rng rng(9);
  auto g = make_connected_er(30, 0.1, rng);
  auto t = bfs_tree(g, 0);
  auto num = dfs_numbering(t);
  EXPECT_EQ(num.walk_length(), 2 * (g.n() - 1));
  for (std::size_t i = 0; i + 1 < num.walk.size(); ++i) {
    const NodeId a = num.walk[i], b = num.walk[i + 1];
    EXPECT_TRUE(t.parent[a] == b || t.parent[b] == a)
        << "walk step " << i << " is not a tree edge";
  }
  // tau is the first-visit position.
  std::vector<bool> seen(g.n(), false);
  for (std::size_t i = 0; i < num.walk.size(); ++i) {
    const NodeId v = num.walk[i];
    if (!seen[v]) {
      seen[v] = true;
      EXPECT_EQ(num.tau[v], i);
    }
  }
  for (NodeId v = 0; v < g.n(); ++v) EXPECT_TRUE(seen[v]);
}

TEST(DfsNumbering, ChildrenVisitedInIdOrder) {
  auto g = make_star(5);
  auto t = bfs_tree(g, 0);
  auto num = dfs_numbering(t);
  // Star rooted at center: tour is 0,1,0,2,0,3,0,4,0.
  EXPECT_EQ(num.tau[1], 1u);
  EXPECT_EQ(num.tau[2], 3u);
  EXPECT_EQ(num.tau[3], 5u);
  EXPECT_EQ(num.tau[4], 7u);
}

TEST(WindowSet, FullWindowIsEverything) {
  auto g = make_path(8);
  auto t = bfs_tree(g, 0);
  auto num = dfs_numbering(t);
  auto s = window_set(num, 3, num.walk_length(), num.walk_length());
  EXPECT_EQ(s.size(), 8u);
}

TEST(WindowSet, WrapsAroundModulus) {
  auto g = make_path(4);  // tau = 0,1,2,3; walk length 6
  auto t = bfs_tree(g, 0);
  auto num = dfs_numbering(t);
  // Window of width 2 starting at node 3 (tau=3): offsets of tau 3,4,5 —
  // only node 3 qualifies... then wrap: tau(0)=0 has offset (0-3) mod 6 = 3.
  auto s = window_set(num, 3, 2, 6);
  EXPECT_EQ(s, (std::vector<NodeId>{3}));
  auto s3 = window_set(num, 3, 3, 6);
  EXPECT_EQ(s3, (std::vector<NodeId>{0, 3}));
}

TEST(WindowSet, CoverageLowerBoundLemma1) {
  // Lemma 1: for window width 2d (d = tree height) and any fixed v,
  // at least d/2 choices of u put v in S(u) — i.e. Pr >= d/2n over uniform
  // u (we check the stronger counting form on the actual tour).
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    auto g = make_random_with_diameter(60, 10, rng);
    auto t = bfs_tree(g, 0);
    auto num = dfs_numbering(t);
    const std::uint32_t d = t.height;
    const std::uint32_t mod = num.walk_length();
    const std::uint32_t width = std::min(2 * d, mod);
    for (NodeId v = 0; v < g.n(); v += 7) {
      std::uint32_t covered = 0;
      for (NodeId u = 0; u < g.n(); ++u) {
        auto s = window_set(num, u, width, mod);
        covered += std::binary_search(s.begin(), s.end(), v) ? 1 : 0;
      }
      EXPECT_GE(covered, (d + 1) / 2) << "v=" << v;
    }
  }
}

TEST(InducedSubtree, FiltersChildren) {
  auto g = make_path(5);
  auto t = bfs_tree(g, 0);
  std::vector<bool> keep{true, true, true, false, false};
  auto sub = induced_subtree(t, keep);
  EXPECT_TRUE(sub.children[2].empty());
  EXPECT_EQ(sub.height, 2u);
  auto num = dfs_numbering(sub);
  EXPECT_EQ(num.walk_length(), 4u);
  EXPECT_FALSE(num.in_walk[3]);
  EXPECT_TRUE(num.in_walk[2]);
}

TEST(InducedSubtree, RejectsNonAncestorClosed) {
  auto g = make_path(4);
  auto t = bfs_tree(g, 0);
  std::vector<bool> keep{true, false, true, false};
  EXPECT_THROW(induced_subtree(t, keep), InvalidArgumentError);
}

TEST(SegmentWindow, ContainsDefinition2WindowAndStart) {
  Rng rng(23);
  auto g = make_random_with_diameter(40, 8, rng);
  auto t = bfs_tree(g, 2);
  auto num = dfs_numbering(t);
  const std::uint32_t mod = num.walk_length();
  for (NodeId u = 0; u < g.n(); u += 5) {
    const std::uint32_t steps = std::min(2 * t.height, mod);
    auto seg = segment_window(num, u, steps);
    EXPECT_EQ(seg.tau_prime[u], 0);
    for (NodeId v : window_set(num, u, steps, mod)) {
      EXPECT_TRUE(
          std::binary_search(seg.members.begin(), seg.members.end(), v));
    }
    // tau' is a valid first-visit index and zero only at u.
    for (NodeId v : seg.members) {
      EXPECT_GE(seg.tau_prime[v], 0);
      EXPECT_LE(seg.tau_prime[v], steps);
      if (v != u) {
        EXPECT_GT(seg.tau_prime[v], 0);
      }
    }
  }
}

TEST(SegmentWindow, FullTourCoversEverything) {
  auto g = make_grid(4, 4);
  auto t = bfs_tree(g, 0);
  auto num = dfs_numbering(t);
  auto seg = segment_window(num, 5, num.walk_length());
  EXPECT_EQ(seg.members.size(), g.n());
  // Oversized step counts saturate.
  auto seg2 = segment_window(num, 5, 10 * num.walk_length());
  EXPECT_EQ(seg.members, seg2.members);
  EXPECT_EQ(seg.tau_prime, seg2.tau_prime);
}

TEST(MaxEccInSegment, MatchesBruteForce) {
  Rng rng(23);
  auto g = make_random_with_diameter(40, 8, rng);
  auto t = bfs_tree(g, 2);
  auto num = dfs_numbering(t);
  for (NodeId u = 0; u < g.n(); u += 5) {
    const std::uint32_t steps = 2 * t.height;
    std::uint32_t brute = 0;
    for (NodeId v : segment_window(num, u, steps).members) {
      brute = std::max(brute, eccentricity(g, v));
    }
    EXPECT_EQ(max_ecc_in_segment(g, num, u, steps), brute);
  }
}

struct GenCase {
  const char* name;
  std::uint32_t n;
  std::uint32_t expected_diameter;
  Graph (*make)(std::uint32_t);
};

class GeneratorDiameter : public ::testing::TestWithParam<GenCase> {};

TEST_P(GeneratorDiameter, HasExpectedDiameter) {
  const auto& c = GetParam();
  auto g = c.make(c.n);
  EXPECT_EQ(g.n(), c.n);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(diameter(g), c.expected_diameter);
}

INSTANTIATE_TEST_SUITE_P(
    Families, GeneratorDiameter,
    ::testing::Values(GenCase{"path16", 16, 15, &make_path},
                      GenCase{"cycle12", 12, 6, &make_cycle},
                      GenCase{"cycle13", 13, 6, &make_cycle},
                      GenCase{"star9", 9, 2, &make_star},
                      GenCase{"complete7", 7, 1, &make_complete}),
    [](const auto& info) { return info.param.name; });

class RandomDiameterFamily
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {
};

TEST_P(RandomDiameterFamily, DiameterIsExact) {
  const auto [n, d] = GetParam();
  Rng rng(1000 + n + d);
  for (int rep = 0; rep < 3; ++rep) {
    auto g = make_random_with_diameter(n, d, rng);
    EXPECT_EQ(g.n(), n);
    ASSERT_TRUE(g.is_connected());
    EXPECT_EQ(diameter(g), d) << "n=" << n << " d=" << d;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomDiameterFamily,
    ::testing::Values(std::pair{10u, 2u}, std::pair{20u, 4u},
                      std::pair{30u, 6u}, std::pair{50u, 10u},
                      std::pair{64u, 3u}, std::pair{64u, 20u},
                      std::pair{100u, 5u}, std::pair{100u, 40u}));

TEST(Generators, GridAndTorus) {
  auto g = make_grid(4, 5);
  EXPECT_EQ(g.n(), 20u);
  EXPECT_EQ(diameter(g), 7u);
  auto t = make_torus(4, 4);
  EXPECT_EQ(t.n(), 16u);
  EXPECT_EQ(diameter(t), 4u);
  for (NodeId v = 0; v < t.n(); ++v) EXPECT_EQ(t.degree(v), 4u);
}

TEST(Generators, BalancedTree) {
  auto g = make_balanced_tree(7, 2);
  EXPECT_EQ(g.m(), 6u);
  EXPECT_EQ(diameter(g), 4u);
}

TEST(Generators, Caterpillar) {
  auto g = make_caterpillar(20, 8);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.n(), 20u);
  const auto d = diameter(g);
  EXPECT_GE(d, 7u);
  EXPECT_LE(d, 9u);
}

TEST(Generators, ConnectedErIsConnected) {
  Rng rng(77);
  for (int i = 0; i < 5; ++i) {
    auto g = make_connected_er(50, 0.02, rng);
    EXPECT_TRUE(g.is_connected());
    EXPECT_EQ(g.n(), 50u);
  }
}

TEST(Generators, Preconditions) {
  Rng rng(1);
  EXPECT_THROW(make_random_with_diameter(3, 10, rng), InvalidArgumentError);
  EXPECT_THROW(make_cycle(2), InvalidArgumentError);
  EXPECT_THROW(make_barbell(1, 2), InvalidArgumentError);
}

}  // namespace
}  // namespace qc::graph
