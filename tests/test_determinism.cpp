// Determinism guarantees of the threaded paths: the parallel engine feeds
// observers the exact sequential event stream, and branch fan-out through
// BranchEvaluator leaves every result and round count invariant across
// thread counts.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "algos/bfs_tree.hpp"
#include "commcc/two_party.hpp"
#include "congest/network.hpp"
#include "congest/trace.hpp"
#include "core/branch_evaluator.hpp"
#include "core/quantum_diameter.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace qc {
namespace {

using graph::Graph;
using graph::NodeId;

Graph random_graph(std::uint32_t n, std::uint32_t d, std::uint64_t seed) {
  Rng rng(seed);
  return graph::make_random_with_diameter(n, d, rng);
}

// ---------------------------------------------------------------------------
// ThreadPool basics.
// ---------------------------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedJob) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 100);

  // The pool is reusable for a second batch.
  for (int i = 0; i < 50; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 150);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

// ---------------------------------------------------------------------------
// BranchEvaluator: dedup, caching, exception propagation, invariance.
// ---------------------------------------------------------------------------

TEST(BranchEvaluator, PrefetchEvaluatesEachBranchOnce) {
  auto counter = std::make_shared<std::atomic<int>>(0);
  core::BranchEvaluator<std::int64_t> ev(
      [counter](std::size_t x) {
        counter->fetch_add(1);
        return static_cast<std::int64_t>(x * x);
      },
      2);
  ev.prefetch({3, 1, 3, 1, 4, 4, 4});  // duplicates collapse
  EXPECT_EQ(counter->load(), 3);
  EXPECT_EQ(ev.distinct_evaluations(), 3u);

  // Cache hits: no further evaluation work.
  EXPECT_EQ(ev(3), 9);
  EXPECT_EQ(ev(4), 16);
  ev.prefetch({1, 3, 4});
  EXPECT_EQ(counter->load(), 3);

  // A genuinely new branch evaluates inline.
  EXPECT_EQ(ev(5), 25);
  EXPECT_EQ(counter->load(), 4);
  EXPECT_EQ(ev.distinct_evaluations(), 4u);
}

TEST(BranchEvaluator, ResultsInvariantAcrossThreadCounts) {
  for (std::uint32_t threads : {1u, 2u, 8u}) {
    auto counter = std::make_shared<std::atomic<int>>(0);
    core::BranchEvaluator<std::int64_t> ev(
        [counter](std::size_t x) {
          counter->fetch_add(1);
          return static_cast<std::int64_t>(7 * x + 1);
        },
        threads);
    ev.prefetch_all(64);
    EXPECT_EQ(counter->load(), 64) << threads << " threads";
    EXPECT_EQ(ev.distinct_evaluations(), 64u) << threads << " threads";
    for (std::size_t x = 0; x < 64; ++x) {
      EXPECT_EQ(ev(x), static_cast<std::int64_t>(7 * x + 1));
    }
    EXPECT_EQ(counter->load(), 64);  // all served from the cache
  }
}

TEST(BranchEvaluator, ExceptionsPropagateToCaller) {
  for (std::uint32_t threads : {1u, 4u}) {
    core::BranchEvaluator<bool> ev(
        [](std::size_t x) -> bool {
          if (x == 13) throw std::runtime_error("branch 13 failed");
          return x % 2 == 0;
        },
        threads);
    EXPECT_THROW(ev.prefetch_all(32), std::runtime_error)
        << threads << " threads";
  }
}

// ---------------------------------------------------------------------------
// Engine parity: the parallel engine must feed observers the exact
// sequential event stream, and produce identical RunStats.
// ---------------------------------------------------------------------------

struct TracedRun {
  std::vector<congest::TraceEvent> events;
  congest::RunStats stats;
};

TracedRun traced_bfs(const Graph& g, congest::Engine engine,
                     std::uint32_t threads,
                     congest::FaultPlan fault = {}) {
  congest::TraceRecorder rec;
  congest::NetworkConfig cfg;
  cfg.engine = engine;
  cfg.num_threads = threads;
  cfg.fault = fault;
  TracedRun out;
  out.stats = algos::build_bfs_tree(g, 0, rec.arm(cfg)).stats;
  out.events = rec.events();
  return out;
}

TEST(EngineParity, TraceIdenticalSequentialVsParallel) {
  for (std::uint64_t seed : {11ULL, 12ULL, 13ULL}) {
    auto g = random_graph(40 + 3 * static_cast<std::uint32_t>(seed), 7, seed);
    auto base = traced_bfs(g, congest::Engine::kSequential, 1);
    ASSERT_FALSE(base.events.empty());
    for (std::uint32_t threads : {2u, 8u}) {
      auto par = traced_bfs(g, congest::Engine::kParallel, threads);
      EXPECT_EQ(par.stats.rounds, base.stats.rounds) << threads << " threads";
      EXPECT_EQ(par.stats.messages, base.stats.messages)
          << threads << " threads";
      EXPECT_EQ(par.stats.bits, base.stats.bits) << threads << " threads";
      EXPECT_EQ(par.events, base.events)
          << "seed " << seed << ", " << threads << " threads";
    }
  }
}

TEST(EngineParity, FaultPlanIdenticalSequentialVsParallel) {
  // Fault decisions are stateless hashes of (seed, round, from, to), so a
  // fixed plan must leave the delivered event stream — and every fault
  // counter — bit-identical across engines and thread counts.
  congest::FaultPlan plan;
  plan.drop_probability = 0.1;
  plan.corrupt_probability = 0.05;
  plan.seed = 77;
  for (std::uint64_t seed : {31ULL, 32ULL}) {
    auto g = random_graph(42 + 2 * static_cast<std::uint32_t>(seed), 7, seed);
    auto base = traced_bfs(g, congest::Engine::kSequential, 1, plan);
    ASSERT_FALSE(base.events.empty());
    EXPECT_GT(base.stats.messages_dropped, 0u) << "seed " << seed;
    for (std::uint32_t threads : {2u, 8u}) {
      auto par = traced_bfs(g, congest::Engine::kParallel, threads, plan);
      EXPECT_EQ(par.stats.rounds, base.stats.rounds) << threads << " threads";
      EXPECT_EQ(par.stats.messages, base.stats.messages)
          << threads << " threads";
      EXPECT_EQ(par.stats.bits, base.stats.bits) << threads << " threads";
      EXPECT_EQ(par.stats.messages_dropped, base.stats.messages_dropped)
          << threads << " threads";
      EXPECT_EQ(par.stats.messages_corrupted, base.stats.messages_corrupted)
          << threads << " threads";
      EXPECT_EQ(par.events, base.events)
          << "seed " << seed << ", " << threads << " threads";
    }
    // Same plan, same engine: reproducible run to run.
    auto again = traced_bfs(g, congest::Engine::kSequential, 1, plan);
    EXPECT_EQ(again.events, base.events) << "seed " << seed;
  }
}

TEST(EngineParity, CutMeterIdenticalSequentialVsParallel) {
  auto g = random_graph(44, 8, 21);
  std::vector<bool> u_mask(g.n(), false);
  for (NodeId v = 0; v < g.n() / 2; ++v) u_mask[v] = true;

  auto run = [&](congest::Engine engine, std::uint32_t threads) {
    commcc::CutMeter meter(u_mask);
    congest::NetworkConfig cfg;
    cfg.engine = engine;
    cfg.num_threads = threads;
    algos::build_bfs_tree(g, 0, meter.arm(cfg));
    return std::tuple{meter.crossing_bits(), meter.crossing_messages(),
                      meter.last_crossing_round()};
  };

  auto base = run(congest::Engine::kSequential, 1);
  EXPECT_GT(std::get<0>(base), 0u);
  for (std::uint32_t threads : {2u, 8u}) {
    EXPECT_EQ(run(congest::Engine::kParallel, threads), base)
        << threads << " threads";
  }
}

// ---------------------------------------------------------------------------
// Branch-thread invariance of the quantum front-ends: values, costs, and
// round accounting must not depend on the worker count.
// ---------------------------------------------------------------------------

TEST(BranchThreads, QuantumDiameterExactInvariant) {
  auto g = random_graph(36, 7, 61);
  auto run = [&](std::uint32_t threads) {
    core::QuantumConfig cfg;
    cfg.seed = 55;
    cfg.branch_threads = threads;
    return core::quantum_diameter_exact(g, cfg);
  };
  auto base = run(1);
  EXPECT_EQ(base.diameter, 7u);
  for (std::uint32_t threads : {2u, 8u}) {
    auto rep = run(threads);
    EXPECT_EQ(rep.diameter, base.diameter) << threads << " threads";
    EXPECT_EQ(rep.total_rounds, base.total_rounds) << threads << " threads";
    EXPECT_EQ(rep.costs.grover_iterations, base.costs.grover_iterations);
    EXPECT_EQ(rep.costs.setup_invocations, base.costs.setup_invocations);
    EXPECT_EQ(rep.costs.candidate_evaluations,
              base.costs.candidate_evaluations);
    EXPECT_EQ(rep.distinct_branch_evaluations,
              base.distinct_branch_evaluations)
        << threads << " threads";
  }
}

TEST(BranchThreads, ObserverForcesSerialButStaysCorrect) {
  auto g = random_graph(24, 5, 67);
  congest::TraceRecorder rec;
  core::QuantumConfig cfg;
  cfg.seed = 9;
  cfg.branch_threads = 8;
  cfg.net = rec.arm(cfg.net);
  auto rep = core::quantum_diameter_exact(g, cfg);
  EXPECT_EQ(rep.diameter, 5u);
  EXPECT_FALSE(rec.events().empty());
}

}  // namespace
}  // namespace qc
