#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "qsim/amplitude_vector.hpp"
#include "qsim/search.hpp"
#include "qsim/statevector.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace qc::qsim {
namespace {

TEST(AmplitudeVector, UniformIsNormalized) {
  auto v = AmplitudeVector::uniform(37);
  EXPECT_NEAR(v.norm_sq(), 1.0, 1e-12);
  EXPECT_NEAR(std::norm(v.amp(0)), 1.0 / 37, 1e-12);
}

TEST(AmplitudeVector, SupportState) {
  auto v = AmplitudeVector::over_support(10, {2, 5, 7});
  EXPECT_NEAR(v.norm_sq(), 1.0, 1e-12);
  EXPECT_NEAR(std::norm(v.amp(5)), 1.0 / 3, 1e-12);
  EXPECT_EQ(v.amp(0), std::complex<double>(0, 0));
}

TEST(AmplitudeVector, SupportRejectsDuplicates) {
  EXPECT_THROW(AmplitudeVector::over_support(4, {1, 1}),
               InvalidArgumentError);
}

TEST(AmplitudeVector, ProbabilityOfPredicate) {
  auto v = AmplitudeVector::uniform(8);
  const double p = v.probability([](std::size_t i) { return i < 2; });
  EXPECT_NEAR(p, 0.25, 1e-12);
}

TEST(AmplitudeVector, PhaseFlipPreservesNorm) {
  auto v = AmplitudeVector::uniform(16);
  v.phase_flip([](std::size_t i) { return i % 3 == 0; });
  EXPECT_NEAR(v.norm_sq(), 1.0, 1e-12);
  EXPECT_LT(v.amp(0).real(), 0);
  EXPECT_GT(v.amp(1).real(), 0);
}

TEST(AmplitudeVector, GroverSingleMarkedAmplifies) {
  // Classic Grover math: with M = 16 and one marked item, after
  // round(pi/4*sqrt(16)) = 3 iterations the marked probability is ~0.96.
  const std::size_t dim = 16, marked_item = 11;
  auto psi0 = AmplitudeVector::uniform(dim);
  auto state = psi0;
  auto pred = [&](std::size_t i) { return i == marked_item; };
  for (int it = 0; it < 3; ++it) state.grover_iterate(pred, psi0);
  EXPECT_GT(state.probability(pred), 0.95);
  EXPECT_NEAR(state.norm_sq(), 1.0, 1e-9);
}

TEST(AmplitudeVector, GroverAngleFormula) {
  // After j iterations the marked probability is sin^2((2j+1) theta) with
  // sin^2(theta) = |M|/N. Check over several j.
  const std::size_t dim = 64;
  const std::size_t marked_count = 3;
  auto pred = [&](std::size_t i) { return i < marked_count; };
  const double theta =
      std::asin(std::sqrt(static_cast<double>(marked_count) / dim));
  auto psi0 = AmplitudeVector::uniform(dim);
  for (int j = 0; j <= 6; ++j) {
    auto state = psi0;
    for (int it = 0; it < j; ++it) state.grover_iterate(pred, psi0);
    const double expect = std::pow(std::sin((2 * j + 1) * theta), 2);
    EXPECT_NEAR(state.probability(pred), expect, 1e-9) << "j=" << j;
  }
}

TEST(AmplitudeVector, SamplingFollowsDistribution) {
  auto v = AmplitudeVector::over_support(4, {1, 3});
  Rng rng(5);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 4000; ++i) ++counts[v.sample(rng)];
  EXPECT_EQ(counts.count(0), 0u);
  EXPECT_EQ(counts.count(2), 0u);
  EXPECT_NEAR(counts[1], 2000, 200);
}

TEST(AmplitudeVector, SampleAtZeroSkipsZeroMassPrefix) {
  // Regression: with u01 == 0.0, the cumulative scan used to stop at the
  // first basis state even when its amplitude was exactly zero, returning
  // a state outside the support. A measurement must never do that.
  auto v = AmplitudeVector::over_support(6, {2, 4});
  EXPECT_EQ(v.sample_at(0.0), 2u);  // first *positive-mass* index
}

TEST(AmplitudeVector, SampleAtAlwaysInSupport) {
  auto v = AmplitudeVector::over_support(8, {1, 3, 6});
  for (double u : {0.0, 1e-18, 0.2, 1.0 / 3.0, 0.5, 2.0 / 3.0, 0.9,
                   1.0 - 1e-16}) {
    const std::size_t x = v.sample_at(u);
    EXPECT_GT(std::norm(v.amp(x)), 0.0) << "u=" << u;
  }
}

TEST(AmplitudeVector, SampleAtTailFallsBackToLastPopulated) {
  // Rounding in the cumulative sum may leave a sliver of u unconsumed; the
  // fallback must be the last populated state, not a zero-amplitude one.
  auto v = AmplitudeVector::over_support(10, {0, 4});
  EXPECT_EQ(v.sample_at(1.0), 4u);
}

TEST(StateVector, InitialState) {
  StateVector sv(3);
  EXPECT_EQ(sv.dim(), 8u);
  EXPECT_NEAR(sv.probability(0), 1.0, 1e-12);
}

TEST(StateVector, HadamardCreatesUniform) {
  StateVector sv(4);
  sv.h_all();
  for (std::uint64_t i = 0; i < sv.dim(); ++i) {
    EXPECT_NEAR(sv.probability(i), 1.0 / 16, 1e-12);
  }
}

TEST(StateVector, XAndZ) {
  StateVector sv(2);
  sv.x(0);
  EXPECT_NEAR(sv.probability(1), 1.0, 1e-12);
  sv.h(1);
  sv.z(1);
  sv.h(1);  // HZH = X
  EXPECT_NEAR(sv.probability(3), 1.0, 1e-12);
}

TEST(StateVector, CnotEntangles) {
  StateVector sv(2);
  sv.h(0);
  sv.cnot(0, 1);  // Bell state
  EXPECT_NEAR(sv.probability(0b00), 0.5, 1e-12);
  EXPECT_NEAR(sv.probability(0b11), 0.5, 1e-12);
  EXPECT_NEAR(sv.probability(0b01), 0.0, 1e-12);
}

TEST(StateVector, CnotCopyClonesClassicalRegister) {
  // |u>|0> -> |u>|u> for a classical u — the broadcast primitive of
  // Proposition 2.
  StateVector sv(4);
  sv.x(0);  // u = 0b01 in qubits {0,1}
  sv.cnot_copy({0, 1}, {2, 3});
  EXPECT_NEAR(sv.probability(0b0101), 1.0, 1e-12);
}

TEST(StateVector, CnotCopyOnSuperpositionSynchronizes) {
  // (|0>+|1>)|0> -> |00>+|11>: each branch carries a synchronized copy,
  // exactly the state Setup distributes through the network.
  StateVector sv(2);
  sv.h(0);
  sv.cnot_copy({0}, {1});
  EXPECT_NEAR(sv.probability(0b00), 0.5, 1e-12);
  EXPECT_NEAR(sv.probability(0b11), 0.5, 1e-12);
}

TEST(StateVector, PhaseGate) {
  StateVector sv(1);
  sv.h(0);
  sv.phase(0, M_PI);  // Z
  sv.h(0);
  EXPECT_NEAR(sv.probability(1), 1.0, 1e-12);
}

TEST(StateVector, CzSymmetric) {
  StateVector a(2), b(2);
  a.h_all();
  b.h_all();
  a.cz(0, 1);
  b.cz(1, 0);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(std::abs(a.amp(i) - b.amp(i)), 0.0, 1e-12);
  }
}

TEST(StateVector, GateLevelGroverMatchesAmplitudeLevel) {
  // The load-bearing cross-validation: a full Grover run composed from
  // gates must equal AmplitudeVector's algebraic operators amplitude by
  // amplitude.
  const std::uint32_t nq = 5;
  const std::size_t dim = 1ULL << nq;
  const std::uint64_t marked = 19;
  auto pred64 = [&](std::uint64_t i) { return i == marked; };
  auto predsz = [&](std::size_t i) { return i == marked; };

  StateVector sv(nq);
  sv.h_all();
  auto av = AmplitudeVector::uniform(dim);
  const auto psi0 = AmplitudeVector::uniform(dim);

  for (int it = 0; it < 4; ++it) {
    sv.oracle(pred64);
    sv.grover_diffusion();
    av.grover_iterate(predsz, psi0);
    for (std::uint64_t i = 0; i < dim; ++i) {
      ASSERT_NEAR(std::abs(sv.amp(i) - av.amp(i)), 0.0, 1e-9)
          << "iteration " << it << " basis " << i;
    }
  }
}

TEST(StateVector, RejectsTooManyQubits) {
  EXPECT_THROW(StateVector(25), InvalidArgumentError);
}

TEST(StateVector, MeasureQubitCollapsesBellPair) {
  Rng rng(6);
  int agree = 0;
  for (int t = 0; t < 50; ++t) {
    StateVector sv(2);
    sv.h(0);
    sv.cnot(0, 1);
    const auto a = sv.measure_qubit(0, rng);
    const auto b = sv.measure_qubit(1, rng);
    agree += (a == b) ? 1 : 0;
    EXPECT_NEAR(sv.norm_sq(), 1.0, 1e-12);
  }
  EXPECT_EQ(agree, 50);  // perfect correlation
}

TEST(StateVector, MeasureQubitStatistics) {
  Rng rng(7);
  int ones = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    StateVector sv(1);
    sv.h(0);
    ones += sv.measure_qubit(0, rng);
  }
  EXPECT_NEAR(ones / static_cast<double>(trials), 0.5, 0.05);
}

TEST(StateVector, MeasureAllCollapses) {
  Rng rng(8);
  StateVector sv(3);
  sv.h_all();
  const auto outcome = sv.measure_all(rng);
  EXPECT_NEAR(sv.probability(outcome), 1.0, 1e-12);
  // Re-measurement is deterministic.
  EXPECT_EQ(sv.measure_all(rng), outcome);
}

TEST(StateVector, FidelityOfPreparationRoutes) {
  // |+>^3 prepared by H^3 vs by H on q0 and CNOT-copying: different
  // circuits, fidelity tells them apart.
  StateVector a(3), b(3);
  a.h_all();
  b.h(0);
  b.cnot_copy({0}, {1});
  b.cnot_copy({0}, {2});  // GHZ, not |+>^3
  EXPECT_NEAR(a.fidelity(a), 1.0, 1e-12);
  EXPECT_NEAR(a.fidelity(b), 0.25, 1e-12);  // |<+++|GHZ>|^2 = 1/4
  StateVector c(3);
  c.h_all();
  EXPECT_NEAR(a.fidelity(c), 1.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Amplitude amplification search (Theorem 6).
// ---------------------------------------------------------------------------

TEST(Search, FindsPlantedItem) {
  Rng rng(7);
  const std::size_t dim = 256, planted = 200;
  auto setup = AmplitudeVector::uniform(dim);
  int found = 0;
  for (int trial = 0; trial < 20; ++trial) {
    auto res = amplitude_amplification_search(
        setup, [&](std::size_t i) { return i == planted; }, 1.0 / dim, 0.05,
        rng);
    if (res.found) {
      EXPECT_EQ(res.item, planted);
      ++found;
    }
  }
  EXPECT_GE(found, 19);
}

TEST(Search, DeclaresEmptyWhenNothingMarked) {
  Rng rng(8);
  auto setup = AmplitudeVector::uniform(128);
  auto res = amplitude_amplification_search(
      setup, [](std::size_t) { return false; }, 1.0 / 128, 0.1, rng);
  EXPECT_FALSE(res.found);
  EXPECT_GT(res.costs.grover_iterations, 0u);
}

TEST(Search, CostScalesAsSqrtOfDim) {
  // Empty searches pay the full Theta(sqrt(1/epsilon) log(1/delta))
  // budget; the ratio between dims 4096 and 64 should be ~sqrt(64) = 8.
  Rng rng(9);
  auto cost_for = [&](std::size_t dim) {
    auto setup = AmplitudeVector::uniform(dim);
    auto res = amplitude_amplification_search(
        setup, [](std::size_t) { return false; }, 1.0 / dim, 0.1, rng);
    return static_cast<double>(res.costs.grover_iterations);
  };
  const double ratio = cost_for(4096) / cost_for(64);
  EXPECT_GT(ratio, 4.0);
  EXPECT_LT(ratio, 16.0);
}

TEST(Search, RespectsSupportState) {
  Rng rng(10);
  auto setup = AmplitudeVector::over_support(64, {3, 9, 12, 40});
  auto res = amplitude_amplification_search(
      setup, [](std::size_t i) { return i == 9; }, 0.25, 0.05, rng);
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.item, 9u);
}

// ---------------------------------------------------------------------------
// Quantum maximum finding (Corollary 1).
// ---------------------------------------------------------------------------

TEST(Maximize, FindsUniqueMaximum) {
  Rng rng(11);
  const std::size_t dim = 128;
  auto setup = AmplitudeVector::uniform(dim);
  auto f = [](std::size_t x) {
    return static_cast<std::int64_t>((x * 37) % 97);
  };
  std::int64_t best = 0;
  for (std::size_t x = 0; x < dim; ++x) best = std::max(best, f(x));
  int hits = 0;
  for (int trial = 0; trial < 15; ++trial) {
    auto res = quantum_maximize(setup, f, 1.0 / dim, 0.05, rng);
    if (res.value == best) ++hits;
  }
  EXPECT_GE(hits, 14);
}

TEST(Maximize, HandlesManyMaximizers) {
  // The Theorem 1 situation: Popt is d/2n, not 1/n — a constant fraction
  // of basis states achieve the maximum and the search gets cheaper.
  Rng rng(12);
  const std::size_t dim = 256;
  auto setup = AmplitudeVector::uniform(dim);
  auto f = [](std::size_t x) {
    return static_cast<std::int64_t>(x >= 192 ? 5 : (x % 5));
  };
  auto res = quantum_maximize(setup, f, 0.25, 0.05, rng);
  EXPECT_EQ(res.value, 5);
  EXPECT_GE(res.argmax, 192u);
}

TEST(Maximize, ConstantFunction) {
  Rng rng(13);
  auto setup = AmplitudeVector::uniform(32);
  auto res = quantum_maximize(
      setup, [](std::size_t) { return std::int64_t{7}; }, 1.0, 0.1, rng);
  EXPECT_EQ(res.value, 7);
}

TEST(Maximize, CostScalesAsInverseSqrtEpsilon) {
  Rng rng(14);
  auto cost_for = [&](std::size_t dim) {
    auto setup = AmplitudeVector::uniform(dim);
    auto f = [dim](std::size_t x) {
      return static_cast<std::int64_t>(x == dim - 1 ? 1 : 0);
    };
    double total = 0;
    for (int t = 0; t < 8; ++t) {
      auto res = quantum_maximize(setup, f, 1.0 / dim, 0.1, rng);
      total += static_cast<double>(res.costs.grover_iterations);
    }
    return total / 8;
  };
  const double ratio = cost_for(2048) / cost_for(32);
  // sqrt(2048/32) = 8; allow generous slack for the randomized schedule.
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 24.0);
}

TEST(Maximize, SupportRestrictedDomain) {
  // The Figure 3 quantum phase maximizes only over R.
  Rng rng(15);
  std::vector<std::size_t> support{4, 17, 23, 42, 51};
  auto setup = AmplitudeVector::over_support(64, support);
  auto f = [](std::size_t x) { return static_cast<std::int64_t>(x); };
  auto res = quantum_maximize(setup, f, 0.2, 0.05, rng);
  EXPECT_EQ(res.argmax, 51u);  // the max *within the support*
}

TEST(Maximize, ReproducibleForFixedSeed) {
  auto setup = AmplitudeVector::uniform(64);
  auto f = [](std::size_t x) { return static_cast<std::int64_t>(x % 13); };
  Rng r1(77), r2(77);
  auto a = quantum_maximize(setup, f, 1.0 / 64, 0.1, r1);
  auto b = quantum_maximize(setup, f, 1.0 / 64, 0.1, r2);
  EXPECT_EQ(a.argmax, b.argmax);
  EXPECT_EQ(a.costs.grover_iterations, b.costs.grover_iterations);
  EXPECT_EQ(a.costs.setup_invocations, b.costs.setup_invocations);
}

}  // namespace
}  // namespace qc::qsim
