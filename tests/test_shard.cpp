// The shard backend, bottom up: partitioner invariants (full cover,
// balance, boundary-arc symmetry), codec round-trips for every frame shape
// (inline and heap-spilled messages) with the same adversarial rejection
// discipline as the serve protocol (every strict prefix, every overlong
// buffer, unknown version/op, nonzero reserved, length bombs), and the
// coordinator end to end: bit-identical parity against the in-process
// engine, custom partitioners, observer-stream merge order, cooperative
// stop, worker-crash containment, process/fd hygiene across lifecycles.

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "algos/bfs_tree.hpp"
#include "algos/leader_election.hpp"
#include "congest/network.hpp"
#include "congest/observer.hpp"
#include "congest/shard/codec.hpp"
#include "congest/shard/partition.hpp"
#include "congest/shard/sharded_network.hpp"
#include "congest/shard/shm_ring.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "serve/protocol.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace qc::congest::shard {
namespace {

using graph::Graph;
using graph::NodeId;

// ---------------------------------------------------------------------------
// Partitioner
// ---------------------------------------------------------------------------

TEST(ShardPartition, ContiguousCoversEveryNodeExactlyOnceAndBalances) {
  Rng rng(7);
  const Graph g = graph::make_connected_er(97, 0.08, rng);
  const ContiguousPartitioner part;
  for (const std::uint32_t w : {1u, 2u, 3u, 8u, 97u}) {
    const ShardAssignment a = make_assignment(g, w, part);
    ASSERT_EQ(a.shards, w);
    ASSERT_EQ(a.shard_of.size(), g.n());
    std::vector<std::uint64_t> seen(w, 0);
    for (NodeId v = 0; v < g.n(); ++v) {
      ASSERT_LT(a.owner(v), w);
      ++seen[a.owner(v)];
    }
    std::uint64_t total = 0;
    for (std::uint32_t s = 0; s < w; ++s) {
      EXPECT_GE(seen[s], 1u) << "empty shard " << s;
      EXPECT_EQ(seen[s], a.owned_count(s));
      // Balanced within one node, and contiguous: exactly one run.
      EXPECT_LE(seen[s], (g.n() + w - 1) / w);
      ASSERT_EQ(a.runs[s].size(), 1u);
      total += seen[s];
    }
    EXPECT_EQ(total, g.n());
    // Runs cover [0, n) in order, back to back.
    std::uint32_t cursor = 0;
    for (std::uint32_t s = 0; s < w; ++s) {
      EXPECT_EQ(a.runs[s].front().first, cursor);
      cursor = a.runs[s].front().second;
    }
    EXPECT_EQ(cursor, g.n());
  }
}

TEST(ShardPartition, RejectsDegenerateShardCounts) {
  const Graph g = graph::make_path(5);
  const ContiguousPartitioner part;
  EXPECT_THROW(make_assignment(g, 0, part), Error);
  EXPECT_THROW(make_assignment(g, 6, part), Error);
}

// An adversarial partitioner whose output skips a shard.
class EmptyShardPartitioner final : public Partitioner {
 public:
  std::vector<std::uint32_t> assign(const Graph& g,
                                    std::uint32_t) const override {
    return std::vector<std::uint32_t>(g.n(), 0);
  }
  const char* name() const override { return "empty-shard"; }
};

// Non-contiguous ownership: node v belongs to shard v % W. Worst case for
// run derivation and for the coordinator's observer merge — every node is
// its own run and every edge is a boundary edge.
class StripePartitioner final : public Partitioner {
 public:
  std::vector<std::uint32_t> assign(const Graph& g,
                                    std::uint32_t shards) const override {
    std::vector<std::uint32_t> owner(g.n());
    for (NodeId v = 0; v < g.n(); ++v) owner[v] = v % shards;
    return owner;
  }
  const char* name() const override { return "stripe"; }
};

TEST(ShardPartition, RejectsPartitionerLeavingAShardEmpty) {
  const Graph g = graph::make_path(8);
  EXPECT_THROW(make_assignment(g, 2, EmptyShardPartitioner()), Error);
}

TEST(ShardPartition, BoundaryArcsAreSymmetricAndOrdered) {
  Rng rng(11);
  const Graph g = graph::make_connected_er(60, 0.1, rng);
  const ContiguousPartitioner contiguous;
  const StripePartitioner stripe;
  for (const std::uint32_t w : {2u, 3u, 8u}) {
    for (const Partitioner* p :
         {static_cast<const Partitioner*>(&contiguous),
          static_cast<const Partitioner*>(&stripe)}) {
      const ShardAssignment a = make_assignment(g, w, *p);
      std::uint64_t arcs = 0;
      for (std::uint32_t s = 0; s < w; ++s) {
        const auto out = boundary_arcs(g, a, s);
        arcs += out.size();
        // (u ascending, port ascending) order; port order on a sorted
        // adjacency is neighbor-id order.
        for (std::size_t i = 1; i < out.size(); ++i) {
          EXPECT_TRUE(out[i - 1].first < out[i].first ||
                      (out[i - 1].first == out[i].first &&
                       out[i - 1].second < out[i].second));
        }
        for (const auto& [u, v] : out) {
          EXPECT_EQ(a.owner(u), s);
          EXPECT_NE(a.owner(v), s);
          // The reverse arc is a boundary arc of the peer shard.
          const auto back = boundary_arcs(g, a, a.owner(v));
          EXPECT_NE(std::find(back.begin(), back.end(),
                              std::make_pair(v, u)),
                    back.end());
        }
      }
      // Every cut edge contributes exactly two directed arcs.
      std::uint64_t cut2 = 0;
      for (NodeId u = 0; u < g.n(); ++u) {
        for (const NodeId v : g.neighbors(u)) {
          if (a.owner(u) != a.owner(v)) ++cut2;
        }
      }
      EXPECT_EQ(arcs, cut2);
    }
  }
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

Message inline_msg() { return Message().push(5, 4).push(0x1FF, 17); }

Message spilled_msg() {
  Message m;
  for (std::uint64_t i = 0; i < Message::kInlineFields + 5; ++i) {
    m.push(i, 7);
  }
  return m;
}

Message extreme_msg() {
  // Width-1 zero and the full 64-bit range — both ends of the grammar.
  return Message().push(0, 1).push(~0ULL, 64);
}

void expect_eq(const Message& a, const Message& b) {
  ASSERT_EQ(a.num_fields(), b.num_fields());
  for (std::size_t i = 0; i < a.num_fields(); ++i) {
    EXPECT_EQ(a.field(i), b.field(i));
    EXPECT_EQ(a.field_bits(i), b.field_bits(i));
  }
}

RunStats sample_stats() {
  RunStats s;
  s.rounds = 3;
  s.messages = 1234567;
  s.bits = 87654321;
  s.max_edge_bits = 96;
  s.violations = 2;
  s.quiesced = true;
  s.max_node_memory_bits = 4096;
  s.messages_dropped = 17;
  s.messages_corrupted = 5;
  s.crashed_node_rounds = 41;
  return s;
}

StartDoneFrame sample_start_done() {
  StartDoneFrame f;
  f.inflight = -12;  // per-worker counters may legitimately go negative
  f.halted = 99;
  f.boundary.push_back(BoundaryMsg{7, inline_msg()});
  f.boundary.push_back(BoundaryMsg{123456, spilled_msg()});
  return f;
}

RoundEndFrame sample_round_end() {
  RoundEndFrame f;
  f.round = 42;
  f.inflight = -3;
  f.halted = 10;
  f.boundary_bytes = 0x1234567890ULL;
  f.boundary_msgs = 777;
  f.stats = sample_stats();
  f.boundary.push_back(BoundaryMsg{0, extreme_msg()});
  f.events.push_back(DeliveryEvent{3, 9, inline_msg()});
  f.events.push_back(DeliveryEvent{9, 3, spilled_msg()});
  return f;
}

TEST(ShardCodec, EmptyFramesRoundTrip) {
  for (const ShardOp op :
       {ShardOp::kStart, ShardOp::kHarvest, ShardOp::kShutdown}) {
    const auto p = encode_empty(op);
    EXPECT_EQ(decode_op(p), op);
    EXPECT_NO_THROW(decode_empty(p, op));
    // The right payload for the wrong op must not pass.
    EXPECT_THROW(decode_empty(p, ShardOp::kRoundBegin),
                 serve::ProtocolError);
  }
}

TEST(ShardCodec, StartDoneRoundTrips) {
  const StartDoneFrame f = sample_start_done();
  const StartDoneFrame d = decode_start_done(encode_start_done(f));
  EXPECT_EQ(d.inflight, f.inflight);
  EXPECT_EQ(d.halted, f.halted);
  ASSERT_EQ(d.boundary.size(), f.boundary.size());
  for (std::size_t i = 0; i < f.boundary.size(); ++i) {
    EXPECT_EQ(d.boundary[i].slot, f.boundary[i].slot);
    expect_eq(d.boundary[i].msg, f.boundary[i].msg);
  }
}

TEST(ShardCodec, RoundBeginRoundTrips) {
  for (const bool audit : {false, true}) {
    RoundBeginFrame f;
    f.round = 7;
    f.memory_audit = audit;
    f.boundary.push_back(BoundaryMsg{31, spilled_msg()});
    const RoundBeginFrame d = decode_round_begin(encode_round_begin(f));
    EXPECT_EQ(d.round, f.round);
    EXPECT_EQ(d.memory_audit, audit);
    ASSERT_EQ(d.boundary.size(), 1u);
    EXPECT_EQ(d.boundary[0].slot, 31u);
    expect_eq(d.boundary[0].msg, f.boundary[0].msg);
  }
}

TEST(ShardCodec, RoundEndRoundTripsIncludingStats) {
  const RoundEndFrame f = sample_round_end();
  const RoundEndFrame d = decode_round_end(encode_round_end(f));
  EXPECT_EQ(d.round, f.round);
  EXPECT_EQ(d.inflight, f.inflight);
  EXPECT_EQ(d.halted, f.halted);
  EXPECT_EQ(d.boundary_bytes, f.boundary_bytes);
  EXPECT_EQ(d.boundary_msgs, f.boundary_msgs);
  const RunStats &a = d.stats, &b = f.stats;
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.bits, b.bits);
  EXPECT_EQ(a.max_edge_bits, b.max_edge_bits);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.quiesced, b.quiesced);
  EXPECT_EQ(a.max_node_memory_bits, b.max_node_memory_bits);
  EXPECT_EQ(a.messages_dropped, b.messages_dropped);
  EXPECT_EQ(a.messages_corrupted, b.messages_corrupted);
  EXPECT_EQ(a.crashed_node_rounds, b.crashed_node_rounds);
  ASSERT_EQ(d.boundary.size(), 1u);
  expect_eq(d.boundary[0].msg, f.boundary[0].msg);
  ASSERT_EQ(d.events.size(), 2u);
  EXPECT_EQ(d.events[0].from, 3u);
  EXPECT_EQ(d.events[0].to, 9u);
  expect_eq(d.events[1].msg, f.events[1].msg);
}

TEST(ShardCodec, HarvestDoneRoundTrips) {
  HarvestDoneFrame f;
  f.states.push_back(inline_msg());
  f.states.push_back(spilled_msg());
  f.states.push_back(Message());  // a zero-field state is legal
  const HarvestDoneFrame d = decode_harvest_done(encode_harvest_done(f));
  ASSERT_EQ(d.states.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) expect_eq(d.states[i], f.states[i]);
}

TEST(ShardCodec, ErrorRoundTripsAndTruncates) {
  EXPECT_EQ(decode_error(encode_error("boom")), "boom");
  const std::string huge(serve::kMaxMessageBytes + 100, 'x');
  const std::string back = decode_error(encode_error(huge));
  EXPECT_EQ(back.size(), serve::kMaxMessageBytes);
}

// The serve discipline, applied to every shard frame shape: every strict
// prefix of a valid payload and every extension of one must fail loudly.
TEST(ShardCodec, EveryStrictPrefixAndOverlongBufferIsRejected) {
  struct Shape {
    std::vector<std::uint8_t> payload;
    std::function<void(std::span<const std::uint8_t>)> decode;
  };
  const std::vector<Shape> shapes = {
      {encode_empty(ShardOp::kStart),
       [](auto p) { decode_empty(p, ShardOp::kStart); }},
      {encode_start_done(sample_start_done()),
       [](auto p) { decode_start_done(p); }},
      {[] {
         RoundBeginFrame f;
         f.round = 3;
         f.memory_audit = true;
         f.boundary.push_back(BoundaryMsg{5, spilled_msg()});
         return encode_round_begin(f);
       }(),
       [](auto p) { decode_round_begin(p); }},
      {encode_round_end(sample_round_end()),
       [](auto p) { decode_round_end(p); }},
      {[] {
         HarvestDoneFrame f;
         f.states.push_back(extreme_msg());
         return encode_harvest_done(f);
       }(),
       [](auto p) { decode_harvest_done(p); }},
      {encode_error("why"), [](auto p) { decode_error(p); }},
  };
  for (const Shape& s : shapes) {
    for (std::size_t len = 0; len < s.payload.size(); ++len) {
      EXPECT_THROW(
          s.decode(std::span(s.payload.data(), len)),
          serve::ProtocolError)
          << "prefix of length " << len << " of " << s.payload.size()
          << " decoded";
    }
    auto longer = s.payload;
    longer.push_back(0);
    EXPECT_THROW(s.decode(longer), serve::ProtocolError)
        << "trailing byte accepted";
  }
}

TEST(ShardCodec, RejectsBadVersionReservedAndOp) {
  auto p = encode_start_done(sample_start_done());
  auto bad = p;
  bad[0] = kShardProtocolVersion + 1;
  EXPECT_THROW(decode_op(bad), serve::ProtocolError);
  bad = p;
  bad[1] = kMaxShardOp + 1;  // unknown op byte
  EXPECT_THROW(decode_op(bad), serve::ProtocolError);
  bad = p;
  bad[2] = 1;  // reserved must be zero
  EXPECT_THROW(decode_op(bad), serve::ProtocolError);
  bad = p;
  bad[3] = 0x80;
  EXPECT_THROW(decode_op(bad), serve::ProtocolError);
  // Right grammar, wrong op for the decoder invoked.
  EXPECT_THROW(decode_round_end(p), serve::ProtocolError);
}

TEST(ShardCodec, RejectsLengthBombsAndBadFieldWidths) {
  // harvest_done claiming 2^32-1 states in a 10-byte body.
  std::vector<std::uint8_t> bomb = {kShardProtocolVersion,
                                    static_cast<std::uint8_t>(
                                        ShardOp::kHarvestDone),
                                    0, 0, 0xFF, 0xFF, 0xFF, 0xFF};
  EXPECT_THROW(decode_harvest_done(bomb), serve::ProtocolError);

  // A message field with width 0, width 65, and a value exceeding its
  // declared width — all three must be rejected, not silently masked.
  const auto make_state = [](std::uint8_t width, std::uint64_t value) {
    std::vector<std::uint8_t> p = {kShardProtocolVersion,
                                   static_cast<std::uint8_t>(
                                       ShardOp::kHarvestDone),
                                   0, 0,
                                   1, 0, 0, 0,   // one state
                                   1, 0, 0, 0};  // one field
    p.push_back(width);
    for (int i = 0; i < 8; ++i) {
      p.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
    }
    return p;
  };
  EXPECT_NO_THROW(decode_harvest_done(make_state(3, 7)));
  EXPECT_THROW(decode_harvest_done(make_state(0, 0)), serve::ProtocolError);
  EXPECT_THROW(decode_harvest_done(make_state(65, 0)), serve::ProtocolError);
  EXPECT_THROW(decode_harvest_done(make_state(3, 8)), serve::ProtocolError);

  // More fields in one message than the cap: the encoder refuses to
  // produce such a payload at all (qc::Error), and a handcrafted one is
  // rejected by the decoder's count check.
  Message too_many;
  for (std::uint32_t i = 0; i <= kMaxWireMessageFields; ++i) {
    too_many.push(1, 1);
  }
  HarvestDoneFrame f;
  f.states.push_back(std::move(too_many));
  EXPECT_THROW(encode_harvest_done(f), Error);
  std::vector<std::uint8_t> crafted = {
      kShardProtocolVersion, static_cast<std::uint8_t>(ShardOp::kHarvestDone),
      0, 0, 1, 0, 0, 0};
  const std::uint32_t nf = kMaxWireMessageFields + 1;
  for (int i = 0; i < 4; ++i) {
    crafted.push_back(static_cast<std::uint8_t>(nf >> (8 * i)));
  }
  for (std::uint32_t i = 0; i < nf; ++i) {
    crafted.push_back(1);  // width 1
    for (int b = 0; b < 8; ++b) crafted.push_back(0);
  }
  EXPECT_THROW(decode_harvest_done(crafted), serve::ProtocolError);
}

// ---------------------------------------------------------------------------
// End to end
// ---------------------------------------------------------------------------

int open_fd_count() {
  int count = 0;
  for ([[maybe_unused]] const auto& e :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    ++count;
  }
  return count;
}

TEST(ShardedNetwork, LeaderElectionMatchesInProcessEngineBitForBit) {
  Rng rng(3);
  const Graph g = graph::make_connected_er(40, 0.12, rng);
  const auto expect = algos::elect_leader(g);
  for (const std::uint32_t w : {1u, 2u, 3u, 8u}) {
    ShardConfig cfg;
    cfg.shards = w;
    ShardedNetwork net(g, cfg);
    const auto got = algos::elect_leader_on(net);
    EXPECT_EQ(got.leader, expect.leader) << "W=" << w;
    EXPECT_EQ(got.stats.rounds, expect.stats.rounds) << "W=" << w;
    EXPECT_EQ(got.stats.messages, expect.stats.messages) << "W=" << w;
    EXPECT_EQ(got.stats.bits, expect.stats.bits) << "W=" << w;
    EXPECT_EQ(got.stats.max_edge_bits, expect.stats.max_edge_bits);
    EXPECT_EQ(got.stats.max_node_memory_bits,
              expect.stats.max_node_memory_bits);
    EXPECT_EQ(got.stats.quiesced, expect.stats.quiesced);
    net.shutdown();
  }
}

TEST(ShardedNetwork, StripePartitionerStillBitIdentical) {
  Rng rng(5);
  const Graph g = graph::make_connected_er(33, 0.15, rng);
  const auto expect = algos::compute_eccentricity(g, 0);
  ShardConfig cfg;
  cfg.shards = 3;
  cfg.partitioner = std::make_shared<StripePartitioner>();
  ShardedNetwork net(g, cfg);
  const auto got = algos::compute_eccentricity_on(net, 0);
  EXPECT_EQ(got.ecc, expect.ecc);
  EXPECT_EQ(got.stats.rounds, expect.stats.rounds);
  EXPECT_EQ(got.stats.messages, expect.stats.messages);
  EXPECT_EQ(got.stats.bits, expect.stats.bits);
  EXPECT_EQ(got.tree.parent, expect.tree.parent);
  EXPECT_EQ(got.tree.depth, expect.tree.depth);
}

TEST(ShardedNetwork, ObserverStreamMergesIntoCanonicalOrder) {
  Rng rng(9);
  const Graph g = graph::make_connected_er(24, 0.2, rng);
  using Event = std::tuple<NodeId, NodeId, std::uint32_t, std::uint64_t>;
  const auto record = [](std::vector<Event>& into) {
    return std::make_shared<CallbackObserver>(
        [&into](NodeId from, NodeId to, const Message& m,
                std::uint32_t round) {
          into.emplace_back(from, to, round,
                            m.num_fields() > 0 ? m.field(0) : 0);
        });
  };
  std::vector<Event> sequential;
  {
    NetworkConfig nc;
    nc.observer = record(sequential);
    Network net(g, nc);
    algos::elect_leader_on(net);
  }
  ASSERT_FALSE(sequential.empty());
  // The stripe partitioner maximally interleaves receivers across workers,
  // so a correct stream here demonstrates a real k-way merge, not
  // concatenation.
  for (const bool stripe : {false, true}) {
    std::vector<Event> sharded;
    ShardConfig cfg;
    cfg.shards = 3;
    cfg.net.observer = record(sharded);
    if (stripe) cfg.partitioner = std::make_shared<StripePartitioner>();
    ShardedNetwork net(g, cfg);
    algos::elect_leader_on(net);
    EXPECT_EQ(sharded, sequential) << "stripe=" << stripe;
  }
}

TEST(ShardedNetwork, HarvestRestoresFullBfsTreeState) {
  Rng rng(13);
  const Graph g = graph::make_connected_er(50, 0.1, rng);
  const auto expect = algos::build_bfs_tree(g, 4);
  ShardConfig cfg;
  cfg.shards = 4;
  ShardedNetwork net(g, cfg);
  const auto got = algos::build_bfs_tree_on(net, 4);
  EXPECT_EQ(got.tree.parent, expect.tree.parent);
  EXPECT_EQ(got.tree.depth, expect.tree.depth);
  EXPECT_EQ(got.tree.children, expect.tree.children);
  EXPECT_EQ(got.tree.height, expect.tree.height);
  EXPECT_EQ(static_cast<int>(got.status), static_cast<int>(expect.status));
}

TEST(ShardedNetwork, RejectsResultReadsWithoutStateTransfer) {
  // A program type without serialize_state/restore_state must fail loudly
  // at harvest time, not return garbage.
  class Opaque final : public NodeProgram {
   public:
    void on_round(NodeContext& ctx) override { ctx.vote_halt(); }
  };
  const Graph g = graph::make_path(6);
  ShardConfig cfg;
  cfg.shards = 2;
  ShardedNetwork net(g, cfg);
  net.init_programs([](NodeId) { return std::make_unique<Opaque>(); });
  net.run_until_quiescent(4);
  EXPECT_THROW(net.program(0), Error);
}

TEST(ShardedNetwork, CooperativeStopInterruptsBetweenRounds) {
  const Graph g = graph::make_cycle(16);
  std::atomic<bool> stop{true};  // raised before the run even starts
  ShardConfig cfg;
  cfg.shards = 2;
  cfg.stop = &stop;
  ShardedNetwork net(g, cfg);
  net.init_programs(
      [](NodeId) { return std::make_unique<algos::FloodMaxProgram>(); });
  const RunStats st = net.run_rounds(100);
  EXPECT_EQ(st.rounds, 0u);
  EXPECT_TRUE(net.interrupted());
  net.shutdown();  // clean teardown after an interrupt
}

TEST(ShardedNetwork, WorkerCrashMidRunFailsCleanlyWithoutHanging) {
  Rng rng(21);
  const Graph g = graph::make_connected_er(30, 0.15, rng);
  ShardConfig cfg;
  cfg.shards = 3;
  ShardedNetwork net(g, cfg);
  net.init_programs(
      [](NodeId) { return std::make_unique<algos::FloodMaxProgram>(); });
  const auto pids = net.worker_pids();
  ASSERT_EQ(pids.size(), 3u);
  ASSERT_EQ(::kill(pids[1], SIGKILL), 0);
  EXPECT_THROW(net.run_until_quiescent(100), Error);
  // Every worker (killed or force-torn-down) is reaped, not zombified.
  for (const pid_t pid : pids) {
    EXPECT_EQ(::waitpid(pid, nullptr, WNOHANG), -1);
    EXPECT_EQ(errno, ECHILD);
  }
  // The coordinator stays broken but safe: further runs refuse, a fresh
  // init_programs recovers.
  EXPECT_THROW(net.run_rounds(1), Error);
  net.init_programs(
      [](NodeId) { return std::make_unique<algos::FloodMaxProgram>(); });
  EXPECT_NO_THROW(net.run_until_quiescent(100));
}

TEST(ShardedNetwork, LifecyclesLeakNeitherFdsNorProcesses) {
  Rng rng(17);
  const Graph g = graph::make_connected_er(25, 0.15, rng);
  // Warm up lazily initialized process state before counting fds.
  {
    ShardConfig cfg;
    cfg.shards = 2;
    ShardedNetwork net(g, cfg);
    algos::elect_leader_on(net);
  }
  const int before = open_fd_count();
  std::vector<pid_t> all_pids;
  for (int i = 0; i < 4; ++i) {
    ShardConfig cfg;
    cfg.shards = 3;
    ShardedNetwork net(g, cfg);
    algos::elect_leader_on(net);
    const auto pids = net.worker_pids();
    all_pids.insert(all_pids.end(), pids.begin(), pids.end());
    if (i % 2 == 0) net.shutdown();  // explicit and destructor paths
  }
  EXPECT_EQ(open_fd_count(), before);
  for (const pid_t pid : all_pids) {
    EXPECT_EQ(::waitpid(pid, nullptr, WNOHANG), -1) << "unreaped " << pid;
  }
}

TEST(ShardedNetwork, ShutdownIsIdempotentAndRefusesLateReads) {
  const Graph g = graph::make_path(8);
  ShardConfig cfg;
  cfg.shards = 2;
  ShardedNetwork net(g, cfg);
  net.init_programs(
      [](NodeId) { return std::make_unique<algos::FloodMaxProgram>(); });
  net.run_until_quiescent(20);
  net.shutdown();
  EXPECT_NO_THROW(net.shutdown());
  // Results were never harvested and the workers are gone.
  EXPECT_THROW(net.program(0), Error);
}

// ---------------------------------------------------------------------------
// GreedyGrowPartitioner
// ---------------------------------------------------------------------------

std::uint64_t cut_arcs(const Graph& g, const ShardAssignment& a) {
  std::uint64_t arcs = 0;
  for (NodeId u = 0; u < g.n(); ++u) {
    for (const NodeId v : g.neighbors(u)) {
      if (a.owner(u) != a.owner(v)) ++arcs;
    }
  }
  return arcs;
}

TEST(ShardPartition, GreedyCoversBalancesAndIsDeterministic) {
  Rng rng(11);
  const std::vector<Graph> graphs = {
      graph::make_connected_er(120, 0.06, rng),
      graph::make_path(75),
      graph::make_cycle(64),
  };
  const GreedyGrowPartitioner part;
  for (const Graph& g : graphs) {
    for (const std::uint32_t w : {2u, 3u, 8u}) {
      const ShardAssignment a = make_assignment(g, w, part);
      ASSERT_EQ(a.shards, w);
      ASSERT_EQ(a.shard_of.size(), g.n());
      // Full cover, every owner in range, no shard empty, and the
      // documented hard capacity cap ceil(n/W) + max(1, slack * ceil(n/W)).
      std::vector<std::uint64_t> sizes(w, 0);
      for (const std::uint32_t s : a.shard_of) {
        ASSERT_LT(s, w);
        ++sizes[s];
      }
      const std::uint64_t base = (g.n() + w - 1) / w;
      const std::uint64_t cap =
          base +
          std::max<std::uint64_t>(1, static_cast<std::uint64_t>(0.05 * base));
      std::uint64_t covered = 0;
      for (std::uint32_t s = 0; s < w; ++s) {
        EXPECT_GE(sizes[s], 1u);
        EXPECT_LE(sizes[s], cap);
        EXPECT_EQ(a.owned_count(s), sizes[s]);
        covered += sizes[s];
      }
      EXPECT_EQ(covered, g.n());
      // Pure function of the graph: every replica recomputes it identically.
      EXPECT_EQ(GreedyGrowPartitioner().assign(g, w), a.shard_of);
    }
  }
}

TEST(ShardPartition, GreedyHandlesDegenerateShardCountsNearN) {
  const Graph g = graph::make_cycle(9);
  const GreedyGrowPartitioner part;
  for (const std::uint32_t w : {8u, 9u}) {
    const ShardAssignment a = make_assignment(g, w, part);
    std::vector<std::uint64_t> sizes(w, 0);
    for (const std::uint32_t s : a.shard_of) ++sizes[s];
    for (std::uint32_t s = 0; s < w; ++s) {
      EXPECT_GE(sizes[s], 1u) << "W=" << w << " shard " << s;
    }
  }
  EXPECT_THROW(make_assignment(g, 10, part), Error);
}

TEST(ShardPartition, GreedyCutsNoMoreArcsThanContiguousOn10kDataset) {
  // The acceptance workload: greedy exists to reduce boundary traffic on
  // the checked-in 10k dataset at W=8 (BENCH_shard.json records the
  // measured reduction; this pins the direction of the inequality).
  const Graph g =
      graph::load_graph_file(std::string(QC_DATA_DIR) + "/synth-p2p-10k.qcg");
  const ShardAssignment greedy =
      make_assignment(g, 8, GreedyGrowPartitioner());
  const ShardAssignment cont = make_assignment(g, 8, ContiguousPartitioner());
  EXPECT_LE(cut_arcs(g, greedy), cut_arcs(g, cont));
}

// ---------------------------------------------------------------------------
// Shared-memory transport
// ---------------------------------------------------------------------------

TEST(ShmTransport, CompletionCounterWaitIsBoundedAndSeesBumps) {
  alignas(64) std::uint8_t mem[CompletionCounter::kBytes] = {};
  CompletionCounter c(mem);
  EXPECT_EQ(c.load(), 0u);
  // Nothing published: the bounded wait expires and reports no movement.
  EXPECT_EQ(c.wait_past(0, 1), 0u);
  c.bump();
  c.bump();
  EXPECT_EQ(c.load(), 2u);
  // A counter that already moved past last_seen returns without sleeping.
  EXPECT_EQ(c.wait_past(0, 10000), 2u);
}

TEST(ShmTransport, ChannelPingPongCarriesFramesSignalsAndAggregates) {
  constexpr std::size_t kCap = 64;
  std::vector<std::uint8_t> mem(ShmChannel::bytes_needed(kCap), 0);
  alignas(64) std::uint8_t cmem[CompletionCounter::kBytes] = {};
  CompletionCounter agg(cmem);
  // Producer and consumer construct independent views over the same bytes,
  // exactly as coordinator and worker do over the inherited arena.
  ShmChannel prod(mem.data(), kCap, &agg);
  ShmChannel cons(mem.data(), kCap);
  ASSERT_TRUE(prod.idle());
  EXPECT_EQ(cons.poll(), ShmSignal::kNone);
  EXPECT_EQ(cons.wait(1), ShmSignal::kNone);  // bounded timeout, no hang

  const std::vector<std::uint8_t> payload = encode_empty(ShardOp::kStart);
  const auto slot = prod.buffer();
  ASSERT_GE(slot.size(), payload.size());
  std::copy(payload.begin(), payload.end(), slot.begin());
  prod.publish_frame(payload.size());
  EXPECT_EQ(agg.load(), 1u);  // w2c publications bump the barrier counter
  EXPECT_FALSE(prod.idle());
  ASSERT_EQ(cons.poll(), ShmSignal::kFrame);
  const auto frame = cons.frame();
  ASSERT_EQ(frame.size(), payload.size());
  EXPECT_TRUE(std::equal(frame.begin(), frame.end(), payload.begin()));
  EXPECT_NO_THROW(decode_empty(frame, ShardOp::kStart));
  cons.release();
  ASSERT_TRUE(prod.idle());

  // Socket hints ride the same doorbell; a busy channel refuses the
  // best-effort publish instead of clobbering the pending publication.
  prod.publish_signal(ShmSignal::kSocket);
  EXPECT_EQ(agg.load(), 2u);
  EXPECT_FALSE(prod.try_publish_signal(ShmSignal::kSocket));
  EXPECT_EQ(cons.wait(10000), ShmSignal::kSocket);
  cons.release();
  EXPECT_TRUE(prod.try_publish_signal(ShmSignal::kSocket));
  cons.release();

  // Oversized publications are a caller bug, refused up front.
  EXPECT_THROW(prod.publish_frame(kCap + 1), Error);
}

TEST(ShmTransport, ChannelRejectsTornLengthAndUnknownKind) {
  // Shared memory is untrusted input: a torn or hostile peer can scribble
  // the header fields between publish and consume. These pokes write the
  // raw header words (doorbell, consumed, len, kind — four u32 in order).
  constexpr std::size_t kCap = 32;
  std::vector<std::uint8_t> mem(ShmChannel::bytes_needed(kCap), 0);
  ShmChannel prod(mem.data(), kCap);
  ShmChannel cons(mem.data(), kCap);

  prod.publish_frame(4);
  const std::uint32_t bad_len = kCap + 1;
  std::memcpy(mem.data() + 8, &bad_len, sizeof(bad_len));
  ASSERT_EQ(cons.poll(), ShmSignal::kFrame);
  EXPECT_THROW(cons.frame(), serve::ProtocolError);
  cons.release();

  prod.publish_signal(ShmSignal::kSocket);
  const std::uint32_t bad_kind = 77;
  std::memcpy(mem.data() + 12, &bad_kind, sizeof(bad_kind));
  EXPECT_THROW(cons.poll(), serve::ProtocolError);
}

TEST(ShmTransport, MeshRingRoundTripsAndRejectsStaleOrTornSlots) {
  constexpr std::size_t kCap = 48;
  std::vector<std::uint8_t> mem(MeshRing::bytes_needed(kCap), 0);
  MeshRing prod(mem.data(), kCap);
  MeshRing cons(mem.data(), kCap);

  auto buf = prod.produce_buffer(3);
  ASSERT_EQ(buf.size(), kCap);
  buf[0] = 0xAB;
  prod.publish(3, 1);
  const auto got = cons.consume(3);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 0xAB);

  // Round 5 maps to the same slot (5 & 1 == 3 & 1) but finds round 3's
  // stamp: stale contents are a protocol error, never silently replayed.
  EXPECT_THROW(cons.consume(5), serve::ProtocolError);
  // The other slot was never published: its zero stamp fails round 2.
  EXPECT_THROW(cons.consume(2), serve::ProtocolError);

  // A torn writer's oversized length is rejected even with a valid stamp.
  // Slot 3 & 1 == 1 starts at kSlotHeaderBytes + kCap; its header is
  // (round u32 | len u32).
  const std::size_t slot1 = MeshRing::kSlotHeaderBytes + kCap;
  const std::uint32_t bad_len = kCap + 1;
  std::memcpy(mem.data() + slot1 + 4, &bad_len, sizeof(bad_len));
  EXPECT_THROW(cons.consume(3), serve::ProtocolError);

  // Oversized publications are refused producer-side as a caller bug.
  EXPECT_THROW(prod.publish(4, kCap + 1), Error);
}

TEST(ShardCodec, MeshBatchRoundTripsThroughWriterAndReader) {
  std::vector<std::uint8_t> buf(512);
  MeshWriter w(buf, 7);
  ASSERT_TRUE(w.add(3, inline_msg()));
  ASSERT_TRUE(w.add(0, spilled_msg()));
  ASSERT_TRUE(w.add(123456, extreme_msg()));
  std::size_t len = 0;
  ASSERT_TRUE(w.finish(len));
  EXPECT_EQ(w.count(), 3u);

  MeshReader r(std::span<const std::uint8_t>(buf.data(), len), 7);
  EXPECT_EQ(r.count(), 3u);
  std::uint32_t slot = 0;
  Message m;
  ASSERT_TRUE(r.next(slot, m));
  EXPECT_EQ(slot, 3u);
  expect_eq(m, inline_msg());
  ASSERT_TRUE(r.next(slot, m));
  EXPECT_EQ(slot, 0u);
  expect_eq(m, spilled_msg());
  ASSERT_TRUE(r.next(slot, m));
  EXPECT_EQ(slot, 123456u);
  expect_eq(m, extreme_msg());
  EXPECT_FALSE(r.next(slot, m));

  // An empty batch (mandatory publication for a round with no traffic on
  // the pair) round-trips too.
  MeshWriter we(buf, 8);
  ASSERT_TRUE(we.finish(len));
  MeshReader re(std::span<const std::uint8_t>(buf.data(), len), 8);
  EXPECT_EQ(re.count(), 0u);
  EXPECT_FALSE(re.next(slot, m));
}

TEST(ShardCodec, MeshBatchRejectsWrongRoundTruncationAndTrailingBytes) {
  std::vector<std::uint8_t> buf(512);
  MeshWriter w(buf, 9);
  ASSERT_TRUE(w.add(1, inline_msg()));
  ASSERT_TRUE(w.add(2, spilled_msg()));
  std::size_t len = 0;
  ASSERT_TRUE(w.finish(len));
  const std::span<const std::uint8_t> batch(buf.data(), len);

  const auto drain = [](std::span<const std::uint8_t> p,
                        std::uint32_t round) {
    MeshReader r(p, round);
    std::uint32_t slot = 0;
    Message m;
    while (r.next(slot, m)) {
    }
  };
  EXPECT_NO_THROW(drain(batch, 9));
  // A stale or skewed producer stamp is rejected before any entry parses.
  EXPECT_THROW(drain(batch, 8), serve::ProtocolError);
  // The same adversarial discipline as socket frames: every strict prefix
  // and every overlong buffer fails somewhere in the drain.
  for (std::size_t cut = 0; cut < len; ++cut) {
    EXPECT_THROW(drain(batch.first(cut), 9), serve::ProtocolError)
        << "prefix " << cut;
  }
  std::vector<std::uint8_t> longer(buf.begin(),
                                   buf.begin() + static_cast<long>(len));
  longer.push_back(0);
  EXPECT_THROW(drain(longer, 9), serve::ProtocolError);
}

TEST(ShardCodec, MeshWriterLatchesOverflowInsteadOfThrowing) {
  // A batch that outgrows its ring slot is an expected outcome (the worker
  // publishes an empty batch and spills via the coordinator), so the
  // writer reports it instead of throwing.
  std::vector<std::uint8_t> tiny(20);
  MeshWriter w(tiny, 2);
  EXPECT_FALSE(w.add(0, inline_msg()));
  std::size_t len = 99;
  EXPECT_FALSE(w.finish(len));
  EXPECT_EQ(w.count(), 0u);
}

// ---------------------------------------------------------------------------
// Round barrier and perf counters
// ---------------------------------------------------------------------------

TEST(ShardedNetwork, RoundBeginReachesEveryWorkerBeforeAnyRoundEndWait) {
  // Regression for the serialized barrier: the coordinator used to send
  // round_begin to worker w and block on w's round_end before serving
  // w+1, so one slow worker stalled the fan-out and W workers sleeping
  // D ms each cost W*D per round. With the broadcast-first barrier they
  // sleep concurrently and a round costs ~D.
  class Sleepy final : public NodeProgram {
   public:
    void on_round(NodeContext& ctx) override {
      if (ctx.id() % 6 == 0) ::usleep(30 * 1000);
    }
  };
  const Graph g = graph::make_path(18);
  ShardConfig cfg;
  cfg.shards = 3;  // contiguous: one sleeper (0, 6, 12) per worker
  ShardedNetwork net(g, cfg);
  net.init_programs([](NodeId) { return std::make_unique<Sleepy>(); });

  const auto t0 = std::chrono::steady_clock::now();
  const RunStats st = net.run_rounds(4);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_EQ(st.rounds, 4u);
  // Serialized service would take >= 3 workers * 4 rounds * 30 ms = 360 ms;
  // concurrent sleeps take ~120 ms. The bound sits between with margin.
  EXPECT_LT(elapsed.count(), 260) << "barrier appears to serialize workers";
  // The coordinator really waited on the barrier, and said so.
  EXPECT_GE(net.perf().barrier_wait_us, 80u * 1000u);
}

TEST(ShardedNetwork, PerfCountersTrackBoundaryTrafficAndElision) {
  Rng rng(17);
  const Graph g = graph::make_connected_er(30, 0.15, rng);
  // Without an observer, per-delivery events are never encoded; the
  // coordinator counts every delivery it did not have to merge.
  {
    ShardConfig cfg;
    cfg.shards = 3;
    ShardedNetwork net(g, cfg);
    const auto got = algos::elect_leader_on(net);
    const ShardPerfCounters& p = net.perf();
    EXPECT_GT(p.rounds, 0u);
    EXPECT_GT(p.boundary_bytes, 0u);
    EXPECT_GT(p.boundary_messages, 0u);
    EXPECT_EQ(p.events_elided, got.stats.messages);
    EXPECT_EQ(p.spilled_frames, 0u);
  }
  // With an observer attached every event ships and merges; none elided.
  {
    ShardConfig cfg;
    cfg.shards = 3;
    std::size_t seen = 0;
    cfg.net.observer = std::make_shared<CallbackObserver>(
        [&seen](NodeId, NodeId, const Message&, std::uint32_t) { ++seen; });
    ShardedNetwork net(g, cfg);
    const auto got = algos::elect_leader_on(net);
    EXPECT_EQ(net.perf().events_elided, 0u);
    EXPECT_EQ(seen, got.stats.messages);
  }
}

TEST(ShardedNetwork, SingleWorkerStillRunsBoundaryFreeAndBitIdentical) {
  // W=1 has no mesh rings and no boundary traffic at all — the degenerate
  // layout must still produce the exact sequential stats.
  Rng rng(23);
  const Graph g = graph::make_connected_er(20, 0.2, rng);
  const auto expect = algos::elect_leader(g);
  ShardConfig cfg;
  cfg.shards = 1;
  ShardedNetwork net(g, cfg);
  const auto got = algos::elect_leader_on(net);
  EXPECT_EQ(got.leader, expect.leader);
  EXPECT_EQ(got.stats.messages, expect.stats.messages);
  EXPECT_EQ(net.perf().boundary_bytes, 0u);
  EXPECT_EQ(net.perf().boundary_messages, 0u);
}

}  // namespace
}  // namespace qc::congest::shard
