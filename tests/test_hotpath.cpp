// The zero-allocation CONGEST delivery hot path: reverse-port table
// correctness (randomized against port_to, corrupted-adjacency construction
// failure), the no-heap-allocation-per-delivery invariant (this binary's
// global allocator is replaced by the counting probe), the incremental
// quiescence counters, and the memory_bits sweep skip.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "congest/message.hpp"
#include "congest/network.hpp"
#include "graph/generators.hpp"
#include "util/alloc_probe.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

QC_INSTALL_ALLOC_PROBE();

namespace qc::congest {
namespace {

using graph::NodeId;

std::vector<std::vector<NodeId>> adjacency_of(const graph::Graph& g) {
  std::vector<std::vector<NodeId>> adj(g.n());
  for (NodeId v = 0; v < g.n(); ++v) {
    const auto nb = g.neighbors(v);
    adj[v].assign(nb.begin(), nb.end());
  }
  return adj;
}

TEST(ReversePorts, AgreesWithPortToOnRandomGraphs) {
  Rng rng(2024);
  for (int trial = 0; trial < 8; ++trial) {
    const auto n = static_cast<std::uint32_t>(16 + 17 * trial);
    auto g = trial % 2 == 0 ? graph::make_connected_er(n, 0.08, rng)
                            : graph::make_random_regular(n, 4, rng);
    const auto adj = adjacency_of(g);
    const auto rev = build_reverse_ports(adj);
    ASSERT_EQ(rev.size(), g.n());
    for (NodeId w = 0; w < g.n(); ++w) {
      ASSERT_EQ(rev[w].size(), adj[w].size());
      for (std::size_t p = 0; p < adj[w].size(); ++p) {
        const NodeId u = adj[w][p];
        // rev[w][p] is the port on u that leads back to w — i.e. exactly
        // what the old per-delivery binary search port_to(u -> w) found.
        ASSERT_LT(rev[w][p], adj[u].size());
        EXPECT_EQ(adj[u][rev[w][p]], w);
        const auto it = std::lower_bound(adj[u].begin(), adj[u].end(), w);
        EXPECT_EQ(rev[w][p],
                  static_cast<std::uint32_t>(it - adj[u].begin()));
      }
    }
  }
}

TEST(ReversePorts, DeliveryRoutesCorrectlyOnRandomGraphs) {
  // End-to-end check that the table actually routes: every node gossips its
  // id once; every node must hear exactly its neighbor set, in port order.
  Rng rng(7);
  auto g = graph::make_connected_er(64, 0.1, rng);
  class Gossip : public NodeProgram {
   public:
    void on_start(NodeContext& ctx) override {
      ctx.broadcast(Message().push(ctx.id(), ctx.id_bits()));
    }
    void on_round(NodeContext& ctx) override {
      for (const auto& in : ctx.inbox()) {
        heard.push_back(static_cast<NodeId>(in.msg.field(0)));
      }
      ctx.vote_halt();
    }
    std::vector<NodeId> heard;
  };
  Network net(g);
  net.init_programs([](NodeId) { return std::make_unique<Gossip>(); });
  net.run_rounds(1);
  for (NodeId v = 0; v < g.n(); ++v) {
    const auto nb = g.neighbors(v);
    EXPECT_EQ(net.program_as<Gossip>(v).heard,
              std::vector<NodeId>(nb.begin(), nb.end()))
        << "node " << v;
  }
}

TEST(ReversePorts, CorruptedAdjacencyFailsConstruction) {
  // Unsorted list: ports would be misnumbered.
  std::vector<std::vector<NodeId>> unsorted = {{2, 1}, {0}, {0}};
  EXPECT_THROW(build_reverse_ports(unsorted), InvalidArgumentError);
  // Duplicate neighbor (not *strictly* sorted).
  std::vector<std::vector<NodeId>> dupe = {{1, 1}, {0}};
  EXPECT_THROW(build_reverse_ports(dupe), InvalidArgumentError);
  // Asymmetric: 0 lists 1 but 1 does not list 0.
  std::vector<std::vector<NodeId>> asym = {{1}, {}};
  EXPECT_THROW(build_reverse_ports(asym), InvalidArgumentError);
  // Out-of-range neighbor id.
  std::vector<std::vector<NodeId>> oob = {{5}, {0}};
  EXPECT_THROW(build_reverse_ports(oob), InvalidArgumentError);
  // A valid adjacency still builds.
  std::vector<std::vector<NodeId>> ok = {{1, 2}, {0, 2}, {0, 1}};
  const auto rev = build_reverse_ports(ok);
  EXPECT_EQ(rev[0], (std::vector<std::uint32_t>{0, 0}));
  EXPECT_EQ(rev[2], (std::vector<std::uint32_t>{1, 1}));
}

/// Floods two fields on every port every round, never halts, allocates no
/// heap memory of its own — the workload for the zero-allocation pin.
class Flood : public NodeProgram {
 public:
  void on_start(NodeContext& ctx) override {
    ctx.broadcast(Message().push(ctx.id() & 0xff, 8).push(1, 8));
  }
  void on_round(NodeContext& ctx) override {
    for (const auto& in : ctx.inbox()) sink += in.msg.field(0);
    ctx.broadcast(
        Message().push(ctx.id() & 0xff, 8).push(ctx.round() & 0xff, 8));
  }
  std::uint64_t sink = 0;
};

TEST(HotPath, ZeroAllocationsPerDeliveryAtSteadyState) {
  Rng rng(11);
  auto g = graph::make_connected_er(48, 0.12, rng);
  Network net(g);
  net.init_programs([](NodeId) { return std::make_unique<Flood>(); });
  // Warm-up: inbox/outbox capacities and the one-time start costs settle.
  net.run_rounds(3);
  const std::uint64_t before = qc::alloc_probe_count().load();
  const RunStats st = net.run_rounds(50);
  const std::uint64_t after = qc::alloc_probe_count().load();
  ASSERT_GT(st.messages, 4000u);  // the region really delivered traffic
  EXPECT_EQ(after - before, 0u)
      << "the no-fault sequential delivery path must not touch the heap";
}

TEST(HotPath, MovedOutboxSlotsAreReusable) {
  // Delivery moves the sender's outbox slot into the receiver's inbox; the
  // next round must be able to queue on the same port again, including a
  // message large enough to spill.
  auto g = graph::make_path(2);
  NetworkConfig cfg;
  cfg.bandwidth_bits = 64;
  class Pitcher : public NodeProgram {
   public:
    void on_round(NodeContext& ctx) override {
      for (const auto& in : ctx.inbox()) {
        last_seen.assign(1, in.msg.field(0));
        fields_seen = in.msg.num_fields();
      }
      Message m;
      const auto fields =
          1 + (ctx.round() % (Message::kInlineFields + 2));
      for (std::size_t i = 0; i < fields; ++i) {
        m.push(ctx.round() & 1, 1);
      }
      if (ctx.id() == 0) ctx.send(0, m);
    }
    std::vector<std::uint64_t> last_seen;
    std::size_t fields_seen = 0;
  };
  Network net(g, cfg);
  net.init_programs([](NodeId) { return std::make_unique<Pitcher>(); });
  for (std::uint32_t r = 1; r <= 2 * Message::kInlineFields + 4; ++r) {
    net.run_rounds(1);
    auto& receiver = net.program_as<Pitcher>(1);
    if (r >= 2) {
      const std::uint32_t sent_round = r - 1;
      ASSERT_EQ(receiver.last_seen,
                std::vector<std::uint64_t>{sent_round & 1});
      EXPECT_EQ(receiver.fields_seen,
                1 + (sent_round % (Message::kInlineFields + 2)));
    }
  }
}

TEST(MemoryAudit, ReportingProgramsAreStillSwept) {
  auto g = graph::make_path(3);
  class Grower : public NodeProgram {
   public:
    void on_round(NodeContext& ctx) override {
      bits = 50 * ctx.round();
      if (ctx.round() >= 4) ctx.vote_halt();
    }
    std::uint64_t memory_bits() const override { return bits; }
    std::uint64_t bits = 1;  // nonzero from the start: the program audits
  };
  for (const Engine engine : {Engine::kSequential, Engine::kParallel}) {
    NetworkConfig cfg;
    cfg.engine = engine;
    cfg.num_threads = 3;
    Network net(g, cfg);
    net.init_programs([](NodeId) { return std::make_unique<Grower>(); });
    const auto phase1 = net.run_rounds(2);
    EXPECT_EQ(phase1.max_node_memory_bits, 100u);
    const auto phase2 = net.run_rounds(2);
    EXPECT_EQ(phase2.max_node_memory_bits, 200u);
    EXPECT_EQ(net.stats().max_node_memory_bits, 200u);
  }
}

TEST(MemoryAudit, AllZeroRoundOneDisablesTheSweep) {
  // Contract pin for the optimization: a program that reports 0 in the
  // first executed round is "not audited" (see NodeProgram::memory_bits),
  // so a later nonzero report is not observed. Programs that audit memory
  // must report nonzero from round 1 — every program in src/algos does.
  auto g = graph::make_path(3);
  class LateReporter : public NodeProgram {
   public:
    void on_round(NodeContext& ctx) override { round = ctx.round(); }
    std::uint64_t memory_bits() const override {
      return round >= 2 ? 4096 : 0;
    }
    std::uint32_t round = 0;
  };
  Network net(g);
  net.init_programs([](NodeId) { return std::make_unique<LateReporter>(); });
  const auto stats = net.run_rounds(5);
  EXPECT_EQ(stats.max_node_memory_bits, 0u);
  // Re-initializing re-arms the audit.
  class Auditor : public NodeProgram {
   public:
    void on_round(NodeContext& ctx) override { ctx.vote_halt(); }
    std::uint64_t memory_bits() const override { return 17; }
  };
  net.init_programs([](NodeId) { return std::make_unique<Auditor>(); });
  EXPECT_EQ(net.run_rounds(2).max_node_memory_bits, 17u);
}

TEST(Quiescence, CountersTrackWaveAcrossEngines) {
  // One wave floods out from node 0 and dies; quiescence must be detected
  // at the same round by the O(1) counters under every engine/thread count
  // (debug builds additionally assert counters == scan every round).
  Rng rng(5);
  auto g = graph::make_connected_er(56, 0.09, rng);
  class Wave : public NodeProgram {
   public:
    void on_start(NodeContext& ctx) override {
      if (ctx.id() == 0) ctx.broadcast(Message().push(0, 8));
    }
    void on_round(NodeContext& ctx) override {
      if (!seen_ && !ctx.inbox().empty()) {
        seen_ = true;
        ctx.broadcast(Message().push(ctx.id() & 0xff, 8));
      }
      ctx.vote_halt();
    }
    bool seen_ = false;
  };
  RunStats base;
  for (const std::uint32_t threads : {0u, 1u, 2u, 5u}) {
    NetworkConfig cfg;
    cfg.engine = threads == 0 ? Engine::kSequential : Engine::kParallel;
    cfg.num_threads = threads;
    Network net(g, cfg);
    net.init_programs([](NodeId) { return std::make_unique<Wave>(); });
    const auto st = net.run_until_quiescent(200);
    EXPECT_TRUE(st.quiesced);
    if (threads == 0) {
      base = st;
    } else {
      EXPECT_EQ(st.rounds, base.rounds) << threads << " threads";
      EXPECT_EQ(st.messages, base.messages) << threads << " threads";
    }
  }
}

TEST(Quiescence, ReinitAfterPartialRunResetsCounters) {
  // A run abandoned mid-flight (messages still queued, some nodes halted)
  // must not leak counter state into the next init_programs generation.
  auto g = graph::make_cycle(8);
  class Chatter : public NodeProgram {
   public:
    void on_round(NodeContext& ctx) override {
      ctx.broadcast(Message().push(1, 2));
    }
  };
  Network net(g);
  net.init_programs([](NodeId) { return std::make_unique<Chatter>(); });
  auto st = net.run_until_quiescent(4);
  EXPECT_FALSE(st.quiesced);
  class Sleeper : public NodeProgram {
   public:
    void on_round(NodeContext& ctx) override { ctx.vote_halt(); }
  };
  net.init_programs([](NodeId) { return std::make_unique<Sleeper>(); });
  st = net.run_until_quiescent(5);
  EXPECT_TRUE(st.quiesced);
  EXPECT_EQ(st.rounds, 1u);  // everyone halts in round 1, nothing in flight
}

}  // namespace
}  // namespace qc::congest
