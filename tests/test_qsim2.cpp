// Gate-algebra identities, amplitude-amplification success-probability
// sweeps, and maximization corner cases for the quantum simulation layer.

#include <gtest/gtest.h>

#include <cmath>

#include "qsim/amplitude_vector.hpp"
#include "qsim/counting.hpp"
#include "qsim/search.hpp"
#include "qsim/statevector.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"
#include "util/rng.hpp"

namespace qc::qsim {
namespace {

/// Prepares a pseudo-random (but deterministic) state via a gate circuit.
StateVector scrambled_state(std::uint32_t nq, std::uint64_t seed) {
  StateVector sv(nq);
  Rng rng(seed);
  for (int layer = 0; layer < 4; ++layer) {
    for (std::uint32_t q = 0; q < nq; ++q) {
      switch (rng.next_below(3)) {
        case 0: sv.h(q); break;
        case 1: sv.x(q); break;
        default: sv.phase(q, rng.next_double() * 3.0); break;
      }
    }
    for (std::uint32_t q = 0; q + 1 < nq; ++q) {
      if (rng.next_bool(0.5)) sv.cnot(q, q + 1);
    }
  }
  return sv;
}

void expect_states_equal(const StateVector& a, const StateVector& b,
                         const char* what) {
  ASSERT_EQ(a.dim(), b.dim());
  for (std::uint64_t i = 0; i < a.dim(); ++i) {
    ASSERT_NEAR(std::abs(a.amp(i) - b.amp(i)), 0.0, 1e-9)
        << what << " differs at basis " << i;
  }
}

TEST(GateAlgebra, InvolutionsOnRandomStates) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    auto sv = scrambled_state(4, seed);
    auto ref = sv;
    sv.h(2);
    sv.h(2);
    expect_states_equal(sv, ref, "HH");
    sv.x(1);
    sv.x(1);
    expect_states_equal(sv, ref, "XX");
    sv.z(3);
    sv.z(3);
    expect_states_equal(sv, ref, "ZZ");
    sv.cnot(0, 2);
    sv.cnot(0, 2);
    expect_states_equal(sv, ref, "CNOT^2");
    sv.cz(1, 3);
    sv.cz(1, 3);
    expect_states_equal(sv, ref, "CZ^2");
  }
}

TEST(GateAlgebra, HzhEqualsX) {
  auto a = scrambled_state(3, 7);
  auto b = a;
  a.h(1);
  a.z(1);
  a.h(1);
  b.x(1);
  expect_states_equal(a, b, "HZH vs X");
}

TEST(GateAlgebra, CzEqualsHadamardConjugatedCnot) {
  auto a = scrambled_state(3, 9);
  auto b = a;
  a.cz(0, 2);
  b.h(2);
  b.cnot(0, 2);
  b.h(2);
  expect_states_equal(a, b, "CZ vs H CNOT H");
}

TEST(GateAlgebra, PhaseComposition) {
  auto a = scrambled_state(2, 11);
  auto b = a;
  a.phase(0, 0.7);
  a.phase(0, 0.9);
  b.phase(0, 1.6);
  expect_states_equal(a, b, "phase additivity");
}

TEST(GateAlgebra, DiffusionIsAnInvolution) {
  auto sv = scrambled_state(4, 13);
  auto ref = sv;
  sv.grover_diffusion();
  sv.grover_diffusion();
  expect_states_equal(sv, ref, "diffusion^2");
}

TEST(GateAlgebra, OracleIsAnInvolution) {
  auto sv = scrambled_state(4, 15);
  auto ref = sv;
  auto pred = [](std::uint64_t i) { return i % 3 == 1; };
  sv.oracle(pred);
  sv.oracle(pred);
  expect_states_equal(sv, ref, "oracle^2");
}

TEST(ReflectAbout, FixesReferenceAndNegatesOrthogonal) {
  auto psi0 = AmplitudeVector::uniform(8);
  auto fixed = psi0;
  fixed.reflect_about(psi0);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(std::abs(fixed.amp(i) - psi0.amp(i)), 0.0, 1e-12);
  }
  // An orthogonal state: +1/-1 pattern against uniform.
  auto orth = AmplitudeVector::over_support(8, {0, 1});
  // Build (|0> - |1>)/sqrt(2) via phase flip on {1}.
  orth.phase_flip([](std::size_t i) { return i == 1; });
  auto reflected = orth;
  reflected.reflect_about(psi0);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(std::abs(reflected.amp(i) + orth.amp(i)), 0.0, 1e-12);
  }
}

class AmplificationSuccess
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(AmplificationSuccess, FindsWithHighProbability) {
  const auto [dim, marked_count] = GetParam();
  Rng rng(dim * 31 + marked_count);
  auto setup = AmplitudeVector::uniform(dim);
  auto pred = [m = marked_count](std::size_t i) { return i < m; };
  const double eps = static_cast<double>(marked_count) / dim;
  int found = 0;
  const int trials = 25;
  for (int t = 0; t < trials; ++t) {
    auto res = amplitude_amplification_search(setup, pred, eps, 0.05, rng);
    if (res.found) {
      EXPECT_LT(res.item, marked_count);
      ++found;
    }
  }
  EXPECT_GE(found, trials - 2) << "dim=" << dim << " |M|=" << marked_count;
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndCounts, AmplificationSuccess,
    ::testing::Values(std::pair{16u, 1u}, std::pair{64u, 1u},
                      std::pair{64u, 8u}, std::pair{256u, 3u},
                      std::pair{1024u, 1u}, std::pair{1024u, 100u}));

TEST(Maximize, NegativeValues) {
  Rng rng(17);
  auto setup = AmplitudeVector::uniform(64);
  auto f = [](std::size_t x) {
    return -static_cast<std::int64_t>((x * 13) % 50) - 5;
  };
  std::int64_t best = f(0);
  for (std::size_t x = 0; x < 64; ++x) best = std::max(best, f(x));
  auto res = quantum_maximize(setup, f, 1.0 / 64, 0.05, rng);
  EXPECT_EQ(res.value, best);
}

TEST(Maximize, TinyDomains) {
  Rng rng(19);
  auto one = AmplitudeVector::uniform(1);
  auto res1 = quantum_maximize(
      one, [](std::size_t) { return std::int64_t{42}; }, 1.0, 0.1, rng);
  EXPECT_EQ(res1.value, 42);
  EXPECT_EQ(res1.argmax, 0u);

  auto two = AmplitudeVector::uniform(2);
  auto res2 = quantum_maximize(
      two, [](std::size_t x) { return static_cast<std::int64_t>(x); }, 0.5,
      0.05, rng);
  EXPECT_EQ(res2.argmax, 1u);
}

TEST(Maximize, AllValuesEqualReturnsQuickly) {
  Rng rng(21);
  auto setup = AmplitudeVector::uniform(128);
  auto res = quantum_maximize(
      setup, [](std::size_t) { return std::int64_t{3}; }, 1.0, 0.05, rng);
  EXPECT_EQ(res.value, 3);
  EXPECT_FALSE(res.budget_exhausted);
}

TEST(Maximize, ParameterValidation) {
  Rng rng(23);
  auto setup = AmplitudeVector::uniform(4);
  auto f = [](std::size_t x) { return static_cast<std::int64_t>(x); };
  EXPECT_THROW(quantum_maximize(setup, f, 0.0, 0.1, rng),
               InvalidArgumentError);
  EXPECT_THROW(quantum_maximize(setup, f, 0.5, 1.5, rng),
               InvalidArgumentError);
  EXPECT_THROW(
      amplitude_amplification_search(
          setup, [](std::size_t) { return false; }, 2.0, 0.1, rng),
      InvalidArgumentError);
}

TEST(Counting, TracksDepthBudget) {
  Rng rng(25);
  auto setup = AmplitudeVector::uniform(64);
  auto pred = [](std::size_t i) { return i < 4; };
  auto est = estimate_marked_fraction(setup, pred, 10, 6, rng);
  // shots * sum_{j=0..6} j = 10 * 21 iterations.
  EXPECT_EQ(est.costs.grover_iterations, 10u * 21);
  EXPECT_EQ(est.costs.setup_invocations, 10u * 7);
}

TEST(Counting, MoreShotsImproveAccuracy) {
  auto setup = AmplitudeVector::uniform(256);
  auto pred = [](std::size_t i) { return i < 10; };
  const double truth = 10.0 / 256;
  double coarse_err = 0, fine_err = 0;
  for (std::uint64_t s = 0; s < 5; ++s) {
    Rng r1(100 + s), r2(100 + s);
    coarse_err +=
        std::abs(estimate_marked_fraction(setup, pred, 4, 8, r1).fraction -
                 truth);
    fine_err +=
        std::abs(estimate_marked_fraction(setup, pred, 60, 8, r2).fraction -
                 truth);
  }
  EXPECT_LE(fine_err, coarse_err + 1e-9);
}

class PhaseEstimationCounting
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(PhaseEstimationCounting, RecoversPlantedCounts) {
  const auto [dim, planted] = GetParam();
  auto setup = AmplitudeVector::uniform(dim);
  auto pred = [p = planted](std::size_t i) { return i < p; };
  const double truth = static_cast<double>(planted) / dim;
  // Phase estimation with t bits has additive phase error ~2^-t whp;
  // translate to a fraction tolerance and allow a few repetitions (take
  // the median) to wash out the tail.
  const std::uint32_t t = 7;
  std::vector<double> samples;
  Rng rng(dim * 7 + planted);
  for (int rep = 0; rep < 5; ++rep) {
    samples.push_back(
        quantum_count_phase_estimation(setup, pred, t, rng).fraction);
  }
  const double med = quantile(samples, 0.5);
  const double theta = std::asin(std::sqrt(truth));
  const double tol =
      2 * M_PI / (1 << t) * (2 * std::sqrt(truth * (1 - truth)) + 0.1) +
      std::pow(M_PI / (1 << t), 2);
  EXPECT_NEAR(med, truth, std::max(tol, 0.01))
      << "dim=" << dim << " planted=" << planted << " theta=" << theta;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PhaseEstimationCounting,
    ::testing::Values(std::pair{64u, 0u}, std::pair{64u, 4u},
                      std::pair{64u, 16u}, std::pair{64u, 32u},
                      std::pair{128u, 1u}, std::pair{128u, 64u},
                      std::pair{256u, 10u}));

TEST(PhaseEstimationCounting, EmptyAndFullAreExact) {
  auto setup = AmplitudeVector::uniform(32);
  Rng rng(5);
  auto none = quantum_count_phase_estimation(
      setup, [](std::size_t) { return false; }, 6, rng);
  EXPECT_NEAR(none.fraction, 0.0, 1e-9);  // eigenphase exactly 0
  auto all = quantum_count_phase_estimation(
      setup, [](std::size_t) { return true; }, 6, rng);
  EXPECT_NEAR(all.fraction, 1.0, 1e-9);  // eigenphase exactly pi
}

TEST(PhaseEstimationCounting, OracleCallsAreTwoToTheT) {
  auto setup = AmplitudeVector::uniform(16);
  Rng rng(6);
  auto est = quantum_count_phase_estimation(
      setup, [](std::size_t i) { return i == 3; }, 5, rng);
  EXPECT_EQ(est.oracle_calls, (1u << 5) - 1);
}

TEST(PhaseEstimationCounting, AgreesWithSamplingEstimator) {
  // Two independent implementations of [BHT98]-style counting (phase
  // estimation vs ML fit over sampled experiments) must agree.
  auto setup = AmplitudeVector::uniform(128);
  auto pred = [](std::size_t i) { return i < 12; };
  Rng r1(7), r2(7);
  std::vector<double> pe;
  for (int rep = 0; rep < 5; ++rep) {
    pe.push_back(
        quantum_count_phase_estimation(setup, pred, 7, r1).fraction);
  }
  const double phase_est = quantile(pe, 0.5);
  const double ml_est =
      estimate_marked_fraction(setup, pred, 40, 10, r2).fraction;
  EXPECT_NEAR(phase_est, ml_est, 0.05);
  EXPECT_NEAR(phase_est, 12.0 / 128, 0.03);
}

}  // namespace
}  // namespace qc::qsim
