// Deeper CONGEST simulator semantics: delivery timing, halting and
// reactivation, stats deltas across phases, observer composition, engine
// configurations, and API misuse.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "congest/network.hpp"
#include "congest/trace.hpp"
#include "graph/generators.hpp"
#include "util/error.hpp"

namespace qc::congest {
namespace {

using graph::NodeId;

/// Sends one message to port 0 at a chosen round, records inbox history.
class TimedSender : public NodeProgram {
 public:
  explicit TimedSender(std::uint32_t send_round) : send_round_(send_round) {}
  void on_round(NodeContext& ctx) override {
    inbox_rounds_.reserve(8);
    for (const auto& in : ctx.inbox()) {
      (void)in;
      inbox_rounds_.push_back(ctx.round());
    }
    if (ctx.round() == send_round_ && ctx.degree() > 0) {
      ctx.send(0, Message().push(1, 4));
    }
  }
  std::vector<std::uint32_t> inbox_rounds_;

 private:
  std::uint32_t send_round_;
};

TEST(Delivery, MessageSentAtRoundTArrivesAtTPlusOne) {
  auto g = graph::make_path(2);
  Network net(g);
  net.init_programs([](NodeId v) {
    return std::make_unique<TimedSender>(v == 0 ? 3u : 1000u);
  });
  net.run_rounds(6);
  const auto& receiver = net.program_as<TimedSender>(1);
  ASSERT_EQ(receiver.inbox_rounds_.size(), 1u);
  EXPECT_EQ(receiver.inbox_rounds_[0], 4u);
}

TEST(Delivery, NoSpuriousDeliveries) {
  auto g = graph::make_cycle(5);
  Network net(g);
  net.init_programs(
      [](NodeId) { return std::make_unique<TimedSender>(10000); });
  auto stats = net.run_rounds(5);
  EXPECT_EQ(stats.messages, 0u);
  EXPECT_EQ(stats.bits, 0u);
}

/// Halts immediately; counts how many times on_round ran.
class SleepyProgram : public NodeProgram {
 public:
  void on_round(NodeContext& ctx) override {
    ++wakeups_;
    ctx.vote_halt();
  }
  int wakeups_ = 0;
};

TEST(Halting, HaltedNodesAreNotScheduled) {
  auto g = graph::make_path(3);
  Network net(g);
  net.init_programs([](NodeId) { return std::make_unique<SleepyProgram>(); });
  net.run_rounds(10);
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_EQ(net.program_as<SleepyProgram>(v).wakeups_, 1);
  }
}

/// Node 0 pokes its neighbor once per phase to test reactivation.
class PokeProgram : public NodeProgram {
 public:
  void on_start(NodeContext& ctx) override {
    if (ctx.id() == 0) ctx.send(0, Message().push(1, 2));
  }
  void on_round(NodeContext& ctx) override {
    wakeups_ += 1;
    ctx.vote_halt();
  }
  int wakeups_ = 0;
};

TEST(Halting, MessageReactivatesHaltedNode) {
  auto g = graph::make_path(2);
  Network net(g);
  net.init_programs([](NodeId) { return std::make_unique<PokeProgram>(); });
  auto stats = net.run_until_quiescent(10);
  EXPECT_TRUE(stats.quiesced);
  // Node 1: woken by the poke at round 1; node 0: ran at round 1, halted.
  EXPECT_EQ(net.program_as<PokeProgram>(1).wakeups_, 1);
}

TEST(Quiescence, CapReturnsNotQuiesced) {
  auto g = graph::make_path(2);
  class Chatter : public NodeProgram {
   public:
    void on_round(NodeContext& ctx) override {
      ctx.broadcast(Message().push(1, 2));  // never halts
    }
  };
  Network net(g);
  net.init_programs([](NodeId) { return std::make_unique<Chatter>(); });
  auto stats = net.run_until_quiescent(7);
  EXPECT_FALSE(stats.quiesced);
  EXPECT_EQ(stats.rounds, 7u);
}

TEST(Stats, DeltasAcrossPhasesAddUp) {
  auto g = graph::make_cycle(6);
  class Burst : public NodeProgram {
   public:
    void on_round(NodeContext& ctx) override {
      if (ctx.round() <= 4) ctx.broadcast(Message().push(1, 8));
    }
  };
  Network net(g);
  net.init_programs([](NodeId) { return std::make_unique<Burst>(); });
  auto first = net.run_rounds(3);
  auto second = net.run_rounds(3);
  EXPECT_EQ(first.rounds, 3u);
  EXPECT_EQ(second.rounds, 3u);
  EXPECT_EQ(net.stats().rounds, 6u);
  EXPECT_EQ(net.stats().messages, first.messages + second.messages);
  EXPECT_EQ(net.stats().bits, first.bits + second.bits);
}

TEST(Observer, SeesEveryDeliveryInOrder) {
  auto g = graph::make_path(3);
  std::vector<std::uint32_t> rounds_seen;
  NetworkConfig cfg;
  cfg.observer = std::make_shared<CallbackObserver>(
      [&](NodeId, NodeId, const Message&, std::uint32_t r) {
        rounds_seen.push_back(r);
      });
  Network net(g, cfg);
  net.init_programs([](NodeId v) {
    return std::make_unique<TimedSender>(v == 0 ? 1u : 2u);
  });
  auto stats = net.run_rounds(4);
  EXPECT_EQ(rounds_seen.size(), stats.messages);
  EXPECT_TRUE(std::is_sorted(rounds_seen.begin(), rounds_seen.end()));
}

TEST(Observer, ParallelEngineMatchesSequentialStream) {
  auto g = graph::make_path(3);
  auto run = [&](Engine engine) {
    std::vector<std::tuple<NodeId, NodeId, std::uint32_t>> events;
    NetworkConfig cfg;
    cfg.engine = engine;
    cfg.num_threads = 2;
    cfg.observer = std::make_shared<CallbackObserver>(
        [&](NodeId from, NodeId to, const Message&, std::uint32_t r) {
          events.emplace_back(from, to, r);
        });
    Network net(g, cfg);
    net.init_programs([](NodeId v) {
      return std::make_unique<TimedSender>(v == 0 ? 1u : 2u);
    });
    net.run_rounds(4);
    return events;
  };
  auto seq = run(Engine::kSequential);
  auto par = run(Engine::kParallel);
  EXPECT_FALSE(seq.empty());
  EXPECT_EQ(seq, par);
}

TEST(Observer, MultiObserverFansOutInOrder) {
  std::vector<int> order;
  auto mk = [&](int tag) {
    return std::make_shared<CallbackObserver>(
        [&order, tag](NodeId, NodeId, const Message&, std::uint32_t) {
          order.push_back(tag);
        });
  };
  auto combined = MultiObserver::combine(mk(1), mk(2));
  ASSERT_NE(combined, nullptr);
  Message msg;
  combined->on_deliver(0, 1, msg, 1);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));

  // combine() passes a lone observer through untouched.
  auto lone = mk(3);
  EXPECT_EQ(MultiObserver::combine(lone, nullptr), lone);
  EXPECT_EQ(MultiObserver::combine(nullptr, lone), lone);
  EXPECT_EQ(MultiObserver::combine(nullptr, nullptr), nullptr);
}

TEST(Observer, TraceRecorderClearWorks) {
  auto g = graph::make_path(3);
  TraceRecorder rec;
  Network net(g, rec.arm({}));
  net.init_programs([](NodeId) { return std::make_unique<TimedSender>(1); });
  net.run_rounds(3);
  EXPECT_FALSE(rec.events().empty());
  rec.clear();
  EXPECT_TRUE(rec.events().empty());
  EXPECT_EQ(rec.last_round(), 0u);
}

TEST(ParallelEngine, ManyThreadCountsAgree) {
  Rng rng(9);
  auto g = graph::make_connected_er(48, 0.07, rng);
  auto run = [&](std::uint32_t threads) {
    NetworkConfig cfg;
    cfg.engine = threads == 0 ? Engine::kSequential : Engine::kParallel;
    cfg.num_threads = threads;
    Network net(g, cfg);
    net.init_programs([](NodeId) {
      class Wave : public NodeProgram {
       public:
        void on_start(NodeContext& ctx) override {
          if (ctx.id() == 0) ctx.broadcast(Message().push(0, 8));
        }
        void on_round(NodeContext& ctx) override {
          if (!seen_ && !ctx.inbox().empty()) {
            seen_ = true;
            ctx.broadcast(Message().push(ctx.id() & 0xff, 8));
          }
          ctx.vote_halt();
        }
        bool seen_ = false;
      };
      return std::make_unique<Wave>();
    });
    return net.run_until_quiescent(100);
  };
  auto base = run(0);
  for (std::uint32_t t : {1u, 2u, 5u, 8u}) {
    auto st = run(t);
    EXPECT_EQ(st.rounds, base.rounds) << t << " threads";
    EXPECT_EQ(st.messages, base.messages) << t << " threads";
    EXPECT_EQ(st.bits, base.bits) << t << " threads";
  }
}

TEST(Api, ProgramAsRejectsWrongType) {
  auto g = graph::make_path(2);
  Network net(g);
  net.init_programs([](NodeId) { return std::make_unique<SleepyProgram>(); });
  net.run_rounds(1);
  EXPECT_NO_THROW(net.program_as<SleepyProgram>(0));
  EXPECT_THROW(net.program_as<PokeProgram>(0), InvalidArgumentError);
}

TEST(Api, RunWithoutProgramsThrows) {
  auto g = graph::make_path(2);
  Network net(g);
  EXPECT_THROW(net.run_rounds(1), InvalidArgumentError);
}

TEST(Api, FactoryReturningNullThrows) {
  auto g = graph::make_path(2);
  Network net(g);
  EXPECT_THROW(
      net.init_programs([](NodeId) -> std::unique_ptr<NodeProgram> {
        return nullptr;
      }),
      InvalidArgumentError);
}

TEST(Api, ReinitResetsState) {
  auto g = graph::make_path(3);
  Network net(g);
  net.init_programs([](NodeId) { return std::make_unique<TimedSender>(1); });
  net.run_rounds(3);
  EXPECT_GT(net.stats().messages, 0u);
  net.init_programs([](NodeId) { return std::make_unique<SleepyProgram>(); });
  EXPECT_EQ(net.stats().rounds, 0u);
  EXPECT_EQ(net.stats().messages, 0u);
  auto stats = net.run_until_quiescent(5);
  EXPECT_TRUE(stats.quiesced);
}

TEST(Bandwidth, DefaultTracksLogN) {
  auto small = Network(graph::make_path(8), {});
  auto large = Network(graph::make_path(4096), {});
  EXPECT_LT(small.bandwidth_bits(), large.bandwidth_bits());
  EXPECT_EQ(large.bandwidth_bits(), congest_bandwidth_bits(4096));
}

TEST(Bandwidth, PerDirectionIndependent) {
  // A full-size message in each direction of one edge in the same round
  // is legal: bandwidth is per edge *direction*.
  auto g = graph::make_path(2);
  NetworkConfig cfg;
  cfg.bandwidth_bits = 8;
  class BothWays : public NodeProgram {
   public:
    void on_start(NodeContext& ctx) override {
      ctx.send(0, Message().push(255, 8));
    }
    void on_round(NodeContext& ctx) override { ctx.vote_halt(); }
  };
  Network net(g, cfg);
  net.init_programs([](NodeId) { return std::make_unique<BothWays>(); });
  auto stats = net.run_rounds(1);
  EXPECT_EQ(stats.violations, 0u);
  EXPECT_EQ(stats.messages, 2u);
}

}  // namespace
}  // namespace qc::congest
