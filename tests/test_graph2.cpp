// Deeper graph-substrate properties: metric axioms on APSP, generator
// degree/structure guarantees, segment-window edge cases, and builder
// semantics.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace qc::graph {
namespace {

class MetricAxioms : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MetricAxioms, ApspIsAMetric) {
  Rng rng(GetParam());
  auto g = make_connected_er(25, 0.12, rng);
  auto d = apsp(g);
  for (NodeId u = 0; u < g.n(); ++u) {
    EXPECT_EQ(d[u][u], 0u);
    for (NodeId v = 0; v < g.n(); ++v) {
      EXPECT_EQ(d[u][v], d[v][u]);  // symmetry
      EXPECT_EQ(d[u][v] == 1, g.has_edge(u, v)) << u << "," << v;
      for (NodeId w = 0; w < g.n(); ++w) {
        EXPECT_LE(d[u][w], d[u][v] + d[v][w]);  // triangle inequality
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricAxioms, ::testing::Values(1, 2, 3));

TEST(MetricFacts, RadiusDiameterSandwich) {
  Rng rng(9);
  for (int t = 0; t < 6; ++t) {
    auto g = make_connected_er(30, 0.08, rng);
    const auto r = radius(g);
    const auto d = diameter(g);
    EXPECT_LE(r, d);
    EXPECT_LE(d, 2 * r);  // the classic sandwich
  }
}

TEST(MetricFacts, EccentricityIsOneLipschitzAlongEdges) {
  Rng rng(11);
  auto g = make_connected_er(30, 0.1, rng);
  auto ecc = all_eccentricities(g);
  for (const auto& [u, v] : g.edges()) {
    EXPECT_LE(ecc[u] > ecc[v] ? ecc[u] - ecc[v] : ecc[v] - ecc[u], 1u);
  }
}

TEST(Generators, GridDegreesAndCorners) {
  auto g = make_grid(5, 7);
  int deg2 = 0, deg3 = 0, deg4 = 0;
  for (NodeId v = 0; v < g.n(); ++v) {
    switch (g.degree(v)) {
      case 2: ++deg2; break;
      case 3: ++deg3; break;
      case 4: ++deg4; break;
      default: FAIL() << "impossible grid degree";
    }
  }
  EXPECT_EQ(deg2, 4);                    // corners
  EXPECT_EQ(deg3, 2 * (5 - 2) + 2 * (7 - 2));  // edges
  EXPECT_EQ(deg4, (5 - 2) * (7 - 2));    // interior
}

TEST(Generators, BalancedTreeParentStructure) {
  auto g = make_balanced_tree(20, 3);
  EXPECT_EQ(g.m(), 19u);
  for (NodeId v = 1; v < g.n(); ++v) {
    EXPECT_TRUE(g.has_edge(v, (v - 1) / 3));
  }
}

TEST(Generators, DiameterFamilyEndpointsRealizeDiameter) {
  Rng rng(13);
  auto g = make_random_with_diameter(60, 14, rng);
  auto d = bfs(g, 0).dist;
  EXPECT_EQ(d[14], 14u);  // the backbone endpoints are at exact distance D
}

TEST(Generators, RandomRegularMidSizes) {
  Rng rng(15);
  for (std::uint32_t n : {20u, 51u, 100u}) {
    auto g = make_random_regular(n, 3, rng);
    EXPECT_TRUE(g.is_connected());
    std::uint64_t degsum = 0;
    for (NodeId v = 0; v < g.n(); ++v) degsum += g.degree(v);
    // Close to 3-regular: within 20% of the target edge count.
    EXPECT_GE(degsum, 2 * g.n());
    EXPECT_LE(degsum, 3 * g.n());
  }
}

TEST(Generators, CaterpillarLegsAttachToInterior) {
  auto g = make_caterpillar(30, 10);
  for (NodeId v = 10; v < 30; ++v) {
    EXPECT_EQ(g.degree(v), 1u);  // legs are leaves
    const NodeId slot = g.neighbors(v)[0];
    EXPECT_GE(slot, 1u);
    EXPECT_LT(slot, 9u);
  }
}

TEST(SegmentWindow, StepsZeroIsSingleton) {
  auto g = make_grid(3, 3);
  auto t = bfs_tree(g, 0);
  auto num = dfs_numbering(t);
  auto seg = segment_window(num, 4, 0);
  EXPECT_EQ(seg.members, (std::vector<NodeId>{4}));
  EXPECT_EQ(seg.tau_prime[4], 0);
}

TEST(SegmentWindow, SingleVertexTree) {
  auto g = make_path(1);
  auto t = bfs_tree(g, 0);
  auto num = dfs_numbering(t);
  auto seg = segment_window(num, 0, 10);
  EXPECT_EQ(seg.members, (std::vector<NodeId>{0}));
}

TEST(SegmentWindow, ConsecutiveWindowsNest) {
  Rng rng(17);
  auto g = make_random_with_diameter(30, 6, rng);
  auto t = bfs_tree(g, 2);
  auto num = dfs_numbering(t);
  for (std::uint32_t steps = 0; steps < 12; ++steps) {
    auto small = segment_window(num, 5, steps);
    auto large = segment_window(num, 5, steps + 1);
    for (NodeId v : small.members) {
      EXPECT_TRUE(std::binary_search(large.members.begin(),
                                     large.members.end(), v));
      EXPECT_EQ(small.tau_prime[v], large.tau_prime[v]);
    }
    EXPECT_LE(small.members.size() + 1, large.members.size() + 1);
  }
}

TEST(SegmentWindow, TauPrimeBoundsDistance) {
  // The Lemma 2/3 workhorse: walk positions bound graph distances for
  // *any* two window members.
  Rng rng(19);
  auto g = make_random_with_diameter(40, 8, rng);
  auto t = bfs_tree(g, 0);
  auto num = dfs_numbering(t);
  auto d = apsp(g);
  auto seg = segment_window(num, 7, 2 * t.height);
  for (NodeId v : seg.members) {
    for (NodeId w : seg.members) {
      if (seg.tau_prime[v] < seg.tau_prime[w]) {
        EXPECT_LE(d[v][w], static_cast<std::uint32_t>(seg.tau_prime[w] -
                                                      seg.tau_prime[v]))
            << "v=" << v << " w=" << w;
      }
    }
  }
}

TEST(Builder, ReserveAndAddNodeInteract) {
  GraphBuilder b(3);
  EXPECT_EQ(b.add_node(), 3u);
  b.reserve_nodes(2);  // no shrink
  EXPECT_EQ(b.num_nodes(), 4u);
  b.add_edge(0, 9);  // implicit grow
  EXPECT_EQ(b.num_nodes(), 10u);
}

TEST(Builder, EdgesAccumulate) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(0, 1);  // dup ok
  b.add_edge(2, 3);
  EXPECT_EQ(b.num_edges(), 3u);
  EXPECT_EQ(b.build().m(), 2u);  // coalesced
}

TEST(InducedSubtree, FullMaskIsIdentity) {
  Rng rng(21);
  auto g = make_random_with_diameter(25, 5, rng);
  auto t = bfs_tree(g, 0);
  std::vector<bool> all(g.n(), true);
  auto sub = induced_subtree(t, all);
  EXPECT_EQ(sub.children, t.children);
  EXPECT_EQ(sub.height, t.height);
}

TEST(InducedSubtree, RootOnlyMask) {
  auto g = make_path(5);
  auto t = bfs_tree(g, 0);
  std::vector<bool> only_root(g.n(), false);
  only_root[0] = true;
  auto sub = induced_subtree(t, only_root);
  auto num = dfs_numbering(sub);
  EXPECT_EQ(num.walk_length(), 0u);
  EXPECT_TRUE(num.in_walk[0]);
  EXPECT_FALSE(num.in_walk[1]);
}

TEST(Girth, EdgeDeletionReferenceOnMixedFamilies) {
  // Triangle + pendant path: girth 3, far from the diameter path.
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  EXPECT_EQ(girth(b.build()), 3u);
  // Two cycles, the smaller wins.
  GraphBuilder c;
  auto c8 = make_cycle(8);
  for (auto [u, v] : c8.edges()) c.add_edge(u, v);
  const NodeId base = 8;
  c.add_edge(base + 0, base + 1);
  c.add_edge(base + 1, base + 2);
  c.add_edge(base + 2, base + 3);
  c.add_edge(base + 3, base + 0);
  c.add_edge(0, base);  // connect
  EXPECT_EQ(girth(c.build()), 4u);
}

}  // namespace
}  // namespace qc::graph
