#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "algos/diameter_classical.hpp"
#include "commcc/disjointness.hpp"
#include "commcc/reductions.hpp"
#include "commcc/two_party.hpp"
#include "graph/algorithms.hpp"
#include "util/rng.hpp"

namespace qc::commcc {
namespace {

using graph::NodeId;

TEST(Disjointness, Basics) {
  EXPECT_TRUE(disjoint({0, 1, 0}, {1, 0, 0}));
  EXPECT_FALSE(disjoint({0, 1, 0}, {0, 1, 0}));
  EXPECT_TRUE(disjoint({0, 0}, {0, 0}));
  EXPECT_THROW(disjoint({0}, {0, 1}), InvalidArgumentError);
}

TEST(Disjointness, RandomInstancesHaveForcedAnswer) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    auto [x0, y0] = random_disj_instance(20, false, rng);
    EXPECT_TRUE(disjoint(x0, y0));
    auto [x1, y1] = random_disj_instance(20, true, rng);
    EXPECT_FALSE(disjoint(x1, y1));
  }
}

/// Exhaustively (or by dense random sampling for larger k) checks the
/// Definition 3 conditions of a reduction.
void check_reduction(const Reduction& red, int random_trials,
                     std::uint64_t seed) {
  // Structural checks.
  EXPECT_EQ(red.u_side.size() + red.v_side.size(), red.num_nodes);
  const auto mask = red.u_mask();
  for (const auto& [a, b] : red.cut_edges) {
    EXPECT_NE(mask[a], mask[b]) << "cut edge does not cross";
  }
  // Fixed non-cut edges must not cross the partition.
  auto is_cut = [&](Edge e) {
    Edge canon{std::min(e.first, e.second), std::max(e.first, e.second)};
    return std::any_of(red.cut_edges.begin(), red.cut_edges.end(),
                       [&](Edge c) {
                         return Edge{std::min(c.first, c.second),
                                     std::max(c.first, c.second)} == canon;
                       });
  };
  for (const auto& e : red.fixed_edges) {
    if (!is_cut(e)) {
      EXPECT_EQ(mask[e.first], mask[e.second]);
    }
  }

  Rng rng(seed);
  auto check_instance = [&](const std::vector<bool>& x,
                            const std::vector<bool>& y) {
    auto g = red.instantiate(x, y);
    ASSERT_TRUE(g.is_connected());
    // Input edges stay within their side.
    for (const auto& e : red.left_edges(x)) {
      EXPECT_TRUE(mask[e.first] && mask[e.second]);
    }
    for (const auto& e : red.right_edges(y)) {
      EXPECT_TRUE(!mask[e.first] && !mask[e.second]);
    }
    const auto diam = graph::diameter(g);
    if (disjoint(x, y)) {
      EXPECT_LE(diam, red.d1) << red.name;
    } else {
      EXPECT_GE(diam, red.d2) << red.name;
    }
  };

  if (red.k <= 4) {  // exhaustive
    for (std::uint32_t xb = 0; xb < (1u << red.k); ++xb) {
      for (std::uint32_t yb = 0; yb < (1u << red.k); ++yb) {
        std::vector<bool> x(red.k), y(red.k);
        for (std::uint32_t i = 0; i < red.k; ++i) {
          x[i] = (xb >> i) & 1;
          y[i] = (yb >> i) & 1;
        }
        check_instance(x, y);
      }
    }
  }
  for (int t = 0; t < random_trials; ++t) {
    auto [x, y] = random_disj_instance(red.k, t % 2 == 0, rng);
    check_instance(x, y);
  }
}

TEST(Hw12Reduction, Definition3HoldsExhaustivelyForS2) {
  check_reduction(hw12_reduction(2), 10, 1);  // k = 4: exhaustive
}

TEST(Hw12Reduction, Definition3HoldsRandomized) {
  check_reduction(hw12_reduction(4), 40, 2);
  check_reduction(hw12_reduction(6), 20, 3);
}

TEST(Hw12Reduction, ParametersMatchTheorem8) {
  for (std::uint32_t s : {2u, 5u, 9u}) {
    auto red = hw12_reduction(s);
    EXPECT_EQ(red.num_nodes, 4 * s + 2);
    EXPECT_EQ(red.k, s * s);
    EXPECT_EQ(red.d1, 2u);
    EXPECT_EQ(red.d2, 3u);
    EXPECT_EQ(red.b(), 2 * s + 1);  // Theta(n) cut
  }
}

TEST(Hw12Reduction, DistanceWitnessPairs) {
  // The proof's witness: d(l_i, r'_j) = 3 iff x_ij = y_ij = 1, else 2.
  const std::uint32_t s = 3;
  auto red = hw12_reduction(s);
  std::vector<bool> x(s * s, false), y(s * s, false);
  x[1 * s + 2] = true;
  y[1 * s + 2] = true;  // only (i=1, j=2) intersects
  auto g = red.instantiate(x, y);
  auto d = graph::apsp(g);
  const NodeId l1 = 1, rp2 = 3 * s + 1 + 2;
  EXPECT_EQ(d[l1][rp2], 3u);
  const NodeId l0 = 0, rp1 = 3 * s + 1 + 1;
  EXPECT_EQ(d[l0][rp1], 2u);
}

TEST(Achk16Reduction, Definition3HoldsExhaustivelyForSmallK) {
  check_reduction(achk16_reduction(2), 10, 4);
  check_reduction(achk16_reduction(3), 10, 5);
  check_reduction(achk16_reduction(4), 10, 6);
}

TEST(Achk16Reduction, Definition3HoldsRandomized) {
  check_reduction(achk16_reduction(8), 30, 7);
  check_reduction(achk16_reduction(16), 30, 8);
  check_reduction(achk16_reduction(33), 20, 9);
}

TEST(Achk16Reduction, CutIsLogarithmic) {
  for (std::uint32_t k : {4u, 16u, 64u, 256u}) {
    auto red = achk16_reduction(k);
    const auto lg = static_cast<std::uint32_t>(std::ceil(std::log2(k)));
    EXPECT_EQ(red.b(), 2 * lg + 1);
    EXPECT_EQ(red.d1, 4u);
    EXPECT_EQ(red.d2, 5u);
    // n = 2k + 4 log k + 4 = Theta(k).
    EXPECT_LE(red.num_nodes, 2 * k + 4 * lg + 4);
  }
}

TEST(SubdivideCut, ShiftsDiameterByD) {
  auto red = achk16_reduction(4);
  Rng rng(10);
  for (std::uint32_t d : {1u, 2u, 4u, 7u}) {
    auto [x0, y0] = random_disj_instance(red.k, false, rng);
    auto g0 = subdivide_cut(red, x0, y0, d);
    EXPECT_EQ(graph::diameter(g0), red.d1 + d) << "d=" << d;

    auto [x1, y1] = random_disj_instance(red.k, true, rng);
    auto g1 = subdivide_cut(red, x1, y1, d);
    EXPECT_EQ(graph::diameter(g1), red.d2 + d) << "d=" << d;
  }
}

TEST(SubdivideCut, NodeCountAndMask) {
  auto red = achk16_reduction(8);
  std::vector<bool> x(red.k, true), y(red.k, true);
  std::vector<bool> mask;
  const std::uint32_t d = 6;
  auto g = subdivide_cut(red, x, y, d, &mask);
  EXPECT_EQ(g.n(), red.num_nodes + red.b() * d);
  EXPECT_EQ(mask.size(), g.n());
  // Half of each dummy path is on Alice's side.
  std::uint32_t alice_dummies = 0;
  for (NodeId v = red.num_nodes; v < g.n(); ++v) alice_dummies += mask[v];
  EXPECT_EQ(alice_dummies, red.b() * ((d + 1) / 2));
}

TEST(PathNetwork, Shape) {
  auto g = path_network(5);
  EXPECT_EQ(g.n(), 7u);
  EXPECT_EQ(g.m(), 6u);
  EXPECT_EQ(graph::diameter(g), 6u);
}

TEST(Transforms, Theorem10Formula) {
  auto c = theorem10_transform(100, 7, 20);
  EXPECT_EQ(c.messages, 200u);
  EXPECT_EQ(c.qubits, 2ULL * 100 * 7 * 20);
}

TEST(Transforms, Theorem11Formula) {
  auto c = theorem11_transform(100, 10, 16, 64);
  EXPECT_EQ(c.messages, 11u);  // ceil(100/10) + 1
  EXPECT_EQ(c.qubits, 10ULL * 10 * (16 + 64));
  // Message count shrinks linearly in d at fixed r.
  EXPECT_LT(theorem11_transform(100, 50, 16, 64).messages, c.messages);
}

TEST(Transforms, BgkBoundShape) {
  // k/m + m is minimized at m = sqrt(k).
  const double k = 10000;
  const double at_opt = bgk_lower_bound(k, std::sqrt(k));
  EXPECT_LT(at_opt, bgk_lower_bound(k, 10.0));
  EXPECT_LT(at_opt, bgk_lower_bound(k, 5000.0));
  EXPECT_NEAR(at_opt, 2 * std::sqrt(k), 1e-9);
}

TEST(Transforms, Floors) {
  EXPECT_NEAR(theorem10_round_floor(10000, 100), 10.0, 1e-9);
  EXPECT_NEAR(theorem3_round_floor(1000, 40, 10), std::sqrt(4000.0), 1e-9);
}

TEST(CutMeter, CountsOnlyCrossingTraffic) {
  auto red = hw12_reduction(3);
  Rng rng(11);
  auto [x, y] = random_disj_instance(red.k, false, rng);
  auto g = red.instantiate(x, y);
  CutMeter meter(red.u_mask());
  auto cfg = meter.arm(congest::NetworkConfig{});
  auto out = algos::classical_exact_diameter(g, cfg);
  EXPECT_EQ(out.diameter, red.d1);
  EXPECT_GT(meter.crossing_bits(), 0u);
  EXPECT_LE(meter.crossing_bits(), out.stats.bits);
  EXPECT_GT(meter.crossing_messages(), 0u);
}

TEST(TwoPartyProtocol, DecidesDisjointnessViaDiameter) {
  auto red = hw12_reduction(3);
  DiameterSolver solver = [](const graph::Graph& g,
                             const congest::NetworkConfig& cfg) {
    auto out = algos::classical_exact_diameter(g, cfg);
    return std::pair{out.diameter, out.stats.rounds};
  };
  Rng rng(12);
  for (int t = 0; t < 6; ++t) {
    const bool intersecting = t % 2 == 0;
    auto [x, y] = random_disj_instance(red.k, intersecting, rng);
    auto run = two_party_diameter_protocol(red, x, y, solver);
    EXPECT_EQ(run.decided_disjoint, !intersecting);
    EXPECT_EQ(run.costs.messages, 2ULL * run.rounds);
    // The capacity charge dominates the actual traffic.
    EXPECT_GE(run.costs.qubits, run.cut_bits);
  }
}

class PathDisjSweep
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {
};

TEST_P(PathDisjSweep, ComputesDisjAndScales) {
  const auto [k, d] = GetParam();
  Rng rng(13 + k + d);
  for (bool intersecting : {false, true}) {
    auto [x, y] = random_disj_instance(k, intersecting, rng);
    auto out = run_path_disjointness(x, y, d);
    EXPECT_EQ(out.is_disjoint, !intersecting) << "k=" << k << " d=" << d;
    // r = Theta(d + k/bw).
    EXPECT_GE(out.rounds, 2 * d);
    EXPECT_LE(out.rounds, 2 * d + k + 10);
    // Intermediates stay at message-size memory (the small-s regime of
    // Theorem 3).
    EXPECT_LE(out.max_intermediate_memory_bits, 80u);
    // Theorem 11 charge: O(r/d) messages.
    EXPECT_LE(out.theorem11.messages, out.rounds / d + 2);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, PathDisjSweep,
    ::testing::Values(std::pair{8u, 2u}, std::pair{16u, 4u},
                      std::pair{64u, 8u}, std::pair{128u, 16u},
                      std::pair{256u, 5u}));

class QuantumDisjSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QuantumDisjSweep, DecidesCorrectlyWithHighProbability) {
  const std::size_t k = GetParam();
  Rng rng(600 + k);
  int correct = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    const bool inter = t % 2 == 0;
    auto [x, y] = random_disj_instance(k, inter, rng);
    auto run = quantum_disjointness_protocol(x, y, 0.05, rng);
    if (run.is_disjoint == !inter) {
      ++correct;
      if (inter) {
        EXPECT_TRUE(x[run.witness] && y[run.witness]);
      }
    }
  }
  EXPECT_GE(correct, trials - 1) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Sizes, QuantumDisjSweep,
                         ::testing::Values(8u, 32u, 128u, 512u));

TEST(QuantumDisj, CommunicationScalesAsSqrtK) {
  // Empty instances pay the full Theta(sqrt(k)) search budget; the qubit
  // volume between k=4096 and k=64 should grow by ~sqrt(64)=8 (up to the
  // log k register factor).
  Rng rng(700);
  auto qubits_for = [&](std::size_t k) {
    std::vector<bool> x(k, false), y(k, false);
    for (std::size_t i = 0; i < k; i += 2) x[i] = true;  // no overlap
    for (std::size_t i = 1; i < k; i += 2) y[i] = true;
    auto run = quantum_disjointness_protocol(x, y, 0.1, rng);
    EXPECT_TRUE(run.is_disjoint);
    return static_cast<double>(run.qubits);
  };
  const double ratio = qubits_for(4096) / qubits_for(64);
  EXPECT_GT(ratio, 5.0);
  EXPECT_LT(ratio, 25.0);
}

TEST(QuantumDisj, RespectsBgkTradeoff) {
  // The protocol uses m ~ sqrt(k) messages, so BGK+15 demands
  // ~k/m + m = 2 sqrt(k) qubits; the register shipping pays sqrt(k) log k,
  // comfortably above.
  Rng rng(701);
  const std::size_t k = 1024;
  auto [x, y] = random_disj_instance(k, false, rng);
  auto run = quantum_disjointness_protocol(x, y, 0.1, rng);
  const double bound =
      bgk_lower_bound(static_cast<double>(k),
                      static_cast<double>(std::max<std::uint64_t>(1, run.messages)));
  EXPECT_GE(static_cast<double>(run.qubits), bound * 0.5)
      << "protocol would beat BGK+15 (up to polylog)";
}

TEST(PathDisj, MessageCountDropsWithLongerPaths) {
  // The Theorem 11 phenomenon: at (roughly) fixed r the number of
  // two-party messages is O(r/d).
  Rng rng(14);
  auto [x, y] = random_disj_instance(64, true, rng);
  auto short_path = run_path_disjointness(x, y, 2);
  auto long_path = run_path_disjointness(x, y, 32);
  EXPECT_GT(short_path.theorem11.messages, long_path.theorem11.messages);
}

}  // namespace
}  // namespace qc::commcc
