#!/bin/sh
# End-to-end ctest fixture for the sharded CONGEST backend: drives
# `qcongest run` on the checked-in 10k dataset across worker counts,
# checks the pinned answers, byte-identical stdout between the in-process
# and every sharded configuration, a clean SIGTERM interrupt of a
# long-running sharded session (exit 0), and that no worker process
# outlives the coordinator.
#
# Usage: shard_e2e.sh <qcongest> <data-dir> <work-dir>
#
# The expected answers (ecc(0) 5, double-sweep lower bound 6) are pinned
# properties of data/synth-p2p-10k.qcg, cross-checked by test_dataset.

set -u

QCONGEST="$1"
DATA_DIR="$2"
WORK_DIR="$3"

DATASET="@$DATA_DIR/synth-p2p-10k.qcg"
OUT0="$WORK_DIR/shard_e2e_$$_w0.out"
ERR="$WORK_DIR/shard_e2e_$$_err.out"

fail() {
    echo "shard_e2e: FAIL: $1" >&2
    rm -f "$OUT0" "$WORK_DIR/shard_e2e_$$"_*.out
    exit 1
}

# Pinned answers through the sharded engine.
got=$("$QCONGEST" run "$DATASET" --algo=ecc --root=0 --shards=2 --quiet \
      2>/dev/null) || fail "sharded ecc failed"
[ "$got" = "5" ] || fail "ecc(0): expected 5, got '$got'"
got=$("$QCONGEST" run "$DATASET" --algo=sweep --root=0 --shards=3 --quiet \
      2>/dev/null) || fail "sharded sweep failed"
[ "$got" = "6" ] || fail "sweep lower bound: expected 6, got '$got'"

# Full stdout must be byte-identical between the in-process engine and
# every sharded worker count — stats, status, everything.
"$QCONGEST" run "$DATASET" --algo=ecc --root=0 >"$OUT0" 2>/dev/null \
    || fail "in-process ecc failed"
grep -q "eccentricity | 5" "$OUT0" || fail "unexpected in-process output"
for W in 1 3 8; do
    OUTW="$WORK_DIR/shard_e2e_$$_w$W.out"
    "$QCONGEST" run "$DATASET" --algo=ecc --root=0 --shards="$W" \
        >"$OUTW" 2>"$ERR" || fail "sharded ecc W=$W failed"
    cmp -s "$OUT0" "$OUTW" || fail "stdout differs at W=$W"
    grep -q "^workers: " "$ERR" || fail "W=$W did not report worker pids"
done

# SIGTERM a long-running sharded session: the coordinator must notice at
# the next round barrier, tear the workers down and exit 0.
"$QCONGEST" run "$DATASET" --algo=ecc --root=0 --shards=3 \
    --rounds=100000000 --quiet >"$WORK_DIR/shard_e2e_$$_sig.out" 2>"$ERR" &
CLI_PID=$!
sleep 2
kill -0 "$CLI_PID" 2>/dev/null || fail "long run exited before SIGTERM"
kill -TERM "$CLI_PID"
wait "$CLI_PID"
status=$?
[ "$status" -eq 0 ] || fail "SIGTERM run exited with status $status"
grep -q "^interrupted$" "$WORK_DIR/shard_e2e_$$_sig.out" \
    || fail "SIGTERM run did not report the interrupt"

# No worker may outlive the coordinator: every pid it reported must be
# gone (reaped, not orphaned or zombified).
workers=$(sed -n 's/^workers: //p' "$ERR" | tail -1)
[ -n "$workers" ] || fail "SIGTERM run did not report worker pids"
sleep 0.2
for pid in $workers; do
    if kill -0 "$pid" 2>/dev/null; then
        fail "worker $pid outlived the coordinator"
    fi
done

rm -f "$OUT0" "$ERR" "$WORK_DIR/shard_e2e_$$"_*.out
echo "shard_e2e: PASS"
exit 0
