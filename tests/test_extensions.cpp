#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "algos/apsp_census.hpp"
#include "algos/girth.hpp"
#include "commcc/disjointness.hpp"
#include "commcc/two_party.hpp"
#include "congest/trace.hpp"
#include "core/quantum_decision.hpp"
#include "core/quantum_radius.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "qsim/search.hpp"
#include "util/rng.hpp"

namespace qc {
namespace {

using graph::Graph;
using graph::NodeId;

Graph random_graph(std::uint32_t n, std::uint32_t d, std::uint64_t seed) {
  Rng rng(seed);
  return graph::make_random_with_diameter(n, d, rng);
}

// ---------------------------------------------------------------------------
// New topology generators.
// ---------------------------------------------------------------------------

TEST(Generators, Hypercube) {
  auto g = graph::make_hypercube(4);
  EXPECT_EQ(g.n(), 16u);
  EXPECT_EQ(g.m(), 32u);
  for (NodeId v = 0; v < g.n(); ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_EQ(graph::diameter(g), 4u);
}

TEST(Generators, HypercubeDistancesAreHamming) {
  auto g = graph::make_hypercube(5);
  auto d = graph::bfs(g, 0).dist;
  for (NodeId v = 0; v < g.n(); ++v) {
    EXPECT_EQ(d[v], static_cast<std::uint32_t>(__builtin_popcount(v)));
  }
}

TEST(Generators, RandomRegularIsConnectedAndNearRegular) {
  Rng rng(5);
  for (std::uint32_t d : {3u, 4u, 6u}) {
    auto g = graph::make_random_regular(60, d, rng);
    EXPECT_TRUE(g.is_connected());
    for (NodeId v = 0; v < g.n(); ++v) {
      EXPECT_GE(g.degree(v), 2u);
      EXPECT_LE(g.degree(v), d);
    }
    // Expander-ish: diameter O(log n).
    EXPECT_LE(graph::diameter(g), 20u);
  }
}

TEST(Generators, PreferentialAttachment) {
  Rng rng(7);
  auto g = graph::make_preferential_attachment(120, 2, rng);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.n(), 120u);
  // Heavy-tailed: the max degree should far exceed the mean.
  std::uint32_t max_deg = 0;
  for (NodeId v = 0; v < g.n(); ++v) {
    max_deg = std::max(max_deg, g.degree(v));
  }
  const double mean = 2.0 * static_cast<double>(g.m()) / g.n();
  EXPECT_GT(max_deg, 2 * mean);
  EXPECT_LE(graph::diameter(g), 16u);
}

TEST(Generators, TwoClusters) {
  Rng rng(9);
  auto g = graph::make_two_clusters(40, 3, rng);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.n(), 80u);
}

// ---------------------------------------------------------------------------
// Radius / center (centralized reference + distributed census + quantum).
// ---------------------------------------------------------------------------

TEST(RadiusCentralized, KnownFamilies) {
  EXPECT_EQ(graph::radius(graph::make_path(9)), 4u);
  EXPECT_EQ(graph::center(graph::make_path(9)), 4u);
  EXPECT_EQ(graph::radius(graph::make_star(10)), 1u);
  EXPECT_EQ(graph::center(graph::make_star(10)), 0u);
  EXPECT_EQ(graph::radius(graph::make_cycle(10)), 5u);
  EXPECT_EQ(graph::radius(graph::make_complete(5)), 1u);
}

TEST(ApspCensus, MatchesCentralizedEverything) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    auto g = random_graph(40, 8, seed + 100);
    auto census = algos::classical_apsp_census(g);
    auto ecc = graph::all_eccentricities(g);
    EXPECT_EQ(census.eccentricity, ecc);
    EXPECT_EQ(census.diameter, graph::diameter(g));
    EXPECT_EQ(census.radius, graph::radius(g));
    EXPECT_EQ(census.center, graph::center(g));
    EXPECT_EQ(census.eccentricity[census.periphery], census.diameter);
  }
}

TEST(ApspCensus, RoundsAreLinear) {
  auto g = random_graph(80, 6, 11);
  auto census = algos::classical_apsp_census(g);
  // O(n + D) with small constants: source detection is the bottleneck.
  EXPECT_LE(census.stats.rounds, 6 * g.n());
  EXPECT_GE(census.stats.rounds, g.n());  // n BFS waves can't beat n
}

TEST(ApspCensus, SingleNode) {
  auto census = algos::classical_apsp_census(graph::make_path(1));
  EXPECT_EQ(census.diameter, 0u);
  EXPECT_EQ(census.radius, 0u);
  EXPECT_EQ(census.center, 0u);
}

class QuantumRadiusSweep
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {
};

TEST_P(QuantumRadiusSweep, MatchesCentralized) {
  const auto [n, d] = GetParam();
  auto g = random_graph(n, d, 7 * n + d);
  core::QuantumConfig cfg;
  cfg.seed = 3;
  auto rep = core::quantum_radius(g, cfg);
  EXPECT_EQ(rep.radius, graph::radius(g)) << "n=" << n << " d=" << d;
  EXPECT_EQ(graph::eccentricity(g, rep.center), rep.radius);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, QuantumRadiusSweep,
    ::testing::Values(std::pair{16u, 4u}, std::pair{24u, 6u},
                      std::pair{40u, 8u}, std::pair{56u, 5u}));

TEST(QuantumRadius, StandardFamilies) {
  core::QuantumConfig cfg;
  EXPECT_EQ(core::quantum_radius(graph::make_path(11), cfg).radius, 5u);
  EXPECT_EQ(core::quantum_radius(graph::make_star(9), cfg).radius, 1u);
  EXPECT_EQ(core::quantum_radius(graph::make_cycle(12), cfg).radius, 6u);
}

TEST(QuantumRadius, Trivial) {
  EXPECT_EQ(core::quantum_radius(graph::make_path(1)).radius, 0u);
}

// ---------------------------------------------------------------------------
// Girth (the [PRT12] companion problem).
// ---------------------------------------------------------------------------

TEST(GirthCentralized, KnownFamilies) {
  EXPECT_EQ(graph::girth(graph::make_cycle(7)), 7u);
  EXPECT_EQ(graph::girth(graph::make_cycle(12)), 12u);
  EXPECT_EQ(graph::girth(graph::make_complete(5)), 3u);
  EXPECT_EQ(graph::girth(graph::make_grid(3, 4)), 4u);
  EXPECT_EQ(graph::girth(graph::make_hypercube(4)), 4u);
  EXPECT_EQ(graph::girth(graph::make_path(8)), graph::kUnreachable);
  EXPECT_EQ(graph::girth(graph::make_balanced_tree(15, 2)),
            graph::kUnreachable);
}

TEST(GirthCentralized, PetersenGraphIsFive) {
  // Outer 5-cycle 0..4, inner pentagram 5..9, spokes i -- i+5.
  graph::GraphBuilder b(10);
  for (NodeId i = 0; i < 5; ++i) {
    b.add_edge(i, (i + 1) % 5);
    b.add_edge(5 + i, 5 + (i + 2) % 5);
    b.add_edge(i, 5 + i);
  }
  EXPECT_EQ(graph::girth(b.build()), 5u);
}

class GirthCensusSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GirthCensusSweep, MatchesCentralizedOnRandomGraphs) {
  Rng rng(GetParam());
  auto g = graph::make_connected_er(30, 0.06, rng);
  auto out = algos::classical_girth_census(g);
  EXPECT_EQ(out.girth, graph::girth(g)) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, GirthCensusSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(GirthCensus, KnownFamilies) {
  EXPECT_EQ(algos::classical_girth_census(graph::make_cycle(9)).girth, 9u);
  EXPECT_EQ(algos::classical_girth_census(graph::make_complete(6)).girth,
            3u);
  EXPECT_EQ(algos::classical_girth_census(graph::make_grid(4, 4)).girth, 4u);
  EXPECT_EQ(algos::classical_girth_census(graph::make_torus(5, 5)).girth,
            4u);
}

TEST(GirthCensus, ForestsReportNoCycle) {
  EXPECT_EQ(algos::classical_girth_census(graph::make_path(10)).girth,
            graph::kUnreachable);
  EXPECT_EQ(
      algos::classical_girth_census(graph::make_balanced_tree(10, 3)).girth,
      graph::kUnreachable);
}

TEST(GirthCensus, DenseAndSparseMix) {
  Rng rng(99);
  auto g = graph::make_random_with_diameter(40, 10, rng);
  auto out = algos::classical_girth_census(g);
  EXPECT_EQ(out.girth, graph::girth(g));
  // O(n) rounds like the diameter census.
  EXPECT_LE(out.stats.rounds, 8 * g.n());
}

// ---------------------------------------------------------------------------
// Diameter threshold decision (the Theorem 2 / Theorem 3 problem shape).
// ---------------------------------------------------------------------------

TEST(QuantumDecide, AroundTheTrueDiameter) {
  auto g = random_graph(40, 9, 77);
  core::QuantumConfig cfg;
  cfg.seed = 5;
  for (std::uint32_t t : {7u, 8u, 9u, 10u, 11u}) {
    auto rep = core::quantum_diameter_decide(g, t, cfg);
    EXPECT_EQ(rep.diameter_exceeds, t < 9) << "threshold " << t;
    if (rep.diameter_exceeds) {
      EXPECT_NE(rep.witness, graph::kInvalidNode);
    }
  }
}

TEST(QuantumDecide, TwoVersusThree) {
  // The exact Theorem 2 setting on the HW12 gadget.
  auto red = commcc::hw12_reduction(4);
  Rng rng(13);
  core::QuantumConfig cfg;
  cfg.seed = 11;
  for (bool inter : {false, true}) {
    auto [x, y] = commcc::random_disj_instance(red.k, inter, rng);
    auto g = red.instantiate(x, y);
    auto rep = core::quantum_diameter_decide(g, 2, cfg);
    EXPECT_EQ(rep.diameter_exceeds, inter);
  }
}

TEST(QuantumDecide, ClassicalShortcutsFire) {
  // d = ecc(leader) already settles thresholds outside [d, 2d).
  auto g = graph::make_path(30);  // D = 29
  core::QuantumConfig cfg;
  auto low = core::quantum_diameter_decide(g, 3, cfg);
  EXPECT_TRUE(low.diameter_exceeds);
  EXPECT_EQ(low.costs.grover_iterations, 0u);  // no quantum phase needed
  auto high = core::quantum_diameter_decide(g, 60, cfg);
  EXPECT_FALSE(high.diameter_exceeds);
  EXPECT_EQ(high.costs.grover_iterations, 0u);
}

TEST(QuantumDecide, CheaperThanFullMaximization) {
  auto g = random_graph(64, 8, 21);
  core::QuantumConfig cfg;
  cfg.oracle = core::OracleMode::kDirect;
  cfg.seed = 9;
  auto exact = core::quantum_diameter_exact(g, cfg);
  auto decide = core::quantum_diameter_decide(g, 7, cfg);  // D = 8 > 7
  ASSERT_TRUE(decide.diameter_exceeds);
  EXPECT_LT(decide.total_rounds, exact.total_rounds);
}

// ---------------------------------------------------------------------------
// Quantum counting.
// ---------------------------------------------------------------------------

TEST(QuantumCounting, RecoversPlantedFractions) {
  Rng rng(31);
  const std::size_t dim = 512;
  auto setup = qsim::AmplitudeVector::uniform(dim);
  for (std::size_t planted : {4u, 16u, 64u}) {
    auto pred = [planted](std::size_t i) { return i < planted; };
    auto est = qsim::estimate_marked_fraction(setup, pred, 40, 12, rng);
    const double truth = static_cast<double>(planted) / dim;
    EXPECT_NEAR(est.fraction, truth, truth * 0.5 + 0.002)
        << "planted " << planted;
    EXPECT_GT(est.costs.grover_iterations, 0u);
  }
}

TEST(QuantumCounting, NearEmptyAndNearFull) {
  Rng rng(33);
  auto setup = qsim::AmplitudeVector::uniform(256);
  auto none = qsim::estimate_marked_fraction(
      setup, [](std::size_t) { return false; }, 30, 8, rng);
  EXPECT_LT(none.fraction, 0.01);
  auto half = qsim::estimate_marked_fraction(
      setup, [](std::size_t i) { return i % 2 == 0; }, 30, 8, rng);
  EXPECT_NEAR(half.fraction, 0.5, 0.12);
}

// ---------------------------------------------------------------------------
// Trace recorder and the Theorem 11 audit.
// ---------------------------------------------------------------------------

TEST(TraceRecorder, RecordsDeliveries) {
  congest::TraceRecorder rec;
  Rng rng(41);
  auto [x, y] = commcc::random_disj_instance(16, true, rng);
  auto out = commcc::run_path_disjointness(x, y, 4, rec.arm({}));
  EXPECT_FALSE(out.is_disjoint);
  EXPECT_FALSE(rec.events().empty());
  EXPECT_EQ(rec.last_round(), out.rounds);
  auto per_round = rec.bits_per_round();
  std::uint64_t total = 0;
  for (auto b : per_round) total += b;
  EXPECT_GT(total, 0u);
}

TEST(Theorem11Audit, LightConeOnPathProtocol) {
  congest::TraceRecorder rec;
  Rng rng(43);
  const std::uint32_t d = 10;
  auto [x, y] = commcc::random_disj_instance(32, false, rng);
  auto out = commcc::run_path_disjointness(x, y, d, rec.arm({}));
  EXPECT_TRUE(out.is_disjoint);

  auto audit = commcc::audit_path_trace(rec.events(), d);
  EXPECT_TRUE(audit.light_cone_respected);
  // A's influence needs at least p rounds to reach position p; B sits at
  // position d+1.
  ASSERT_EQ(audit.earliest_influence.size(), d + 2);
  EXPECT_GE(audit.earliest_influence[d + 1], d + 1);
  EXPECT_EQ(audit.rounds, out.rounds);
  EXPECT_EQ(audit.blocks, (out.rounds + d - 1) / d);
  EXPECT_GT(audit.max_block_frontier_bits, 0u);
  // The Figure 7 shipment capacity d*(bw+s) covers each block's frontier
  // traffic with room to spare.
  EXPECT_LE(audit.max_block_frontier_bits,
            static_cast<std::uint64_t>(d) *
                (congest_bandwidth_bits(d + 2) +
                 out.max_intermediate_memory_bits));
}

TEST(Theorem11Audit, InfluenceFrontAdvancesOneHopPerRound) {
  congest::TraceRecorder rec;
  Rng rng(47);
  const std::uint32_t d = 6;
  auto [x, y] = commcc::random_disj_instance(8, true, rng);
  commcc::run_path_disjointness(x, y, d, rec.arm({}));
  auto audit = commcc::audit_path_trace(rec.events(), d);
  for (std::uint32_t p = 1; p <= d + 1; ++p) {
    ASSERT_NE(audit.earliest_influence[p], graph::kUnreachable);
    EXPECT_EQ(audit.earliest_influence[p], p)
        << "the streaming protocol's front moves exactly one hop per round";
  }
}

}  // namespace
}  // namespace qc
