// Cross-module integration and property tests: end-to-end runs on the
// lower-bound gadget networks, engine equivalence for full algorithms,
// determinism of whole reports, and failure injection (bandwidth
// starvation) against the model-enforcement machinery.

#include <gtest/gtest.h>

#include <algorithm>

#include "algos/apsp_census.hpp"
#include "algos/diameter_classical.hpp"
#include "algos/evaluation.hpp"
#include "algos/hprw.hpp"
#include "commcc/disjointness.hpp"
#include "commcc/reductions.hpp"
#include "commcc/two_party.hpp"
#include "core/quantum_approx.hpp"
#include "core/quantum_diameter.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace qc {
namespace {

using graph::Graph;
using graph::NodeId;

Graph random_graph(std::uint32_t n, std::uint32_t d, std::uint64_t seed) {
  Rng rng(seed);
  return graph::make_random_with_diameter(n, d, rng);
}

// ---------------------------------------------------------------------------
// Differential property sweep: four independent implementations must agree.
// ---------------------------------------------------------------------------

class DifferentialSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t,
                                                 std::uint64_t>> {};

TEST_P(DifferentialSweep, AllDiameterImplementationsAgree) {
  const auto [n, d, seed] = GetParam();
  auto g = random_graph(n, d, seed);
  const std::uint32_t truth = graph::diameter(g);  // centralized reference

  auto classical = algos::classical_exact_diameter(g);
  EXPECT_EQ(classical.diameter, truth);

  auto census = algos::classical_apsp_census(g);
  EXPECT_EQ(census.diameter, truth);

  core::QuantumConfig cfg;
  cfg.seed = seed ^ 0xabcd;
  auto quantum = core::quantum_diameter_exact(g, cfg);
  EXPECT_EQ(quantum.diameter, truth);

  auto simple = core::quantum_diameter_simple(g, cfg);
  EXPECT_EQ(simple.diameter, truth);
}

INSTANTIATE_TEST_SUITE_P(
    ManySeeds, DifferentialSweep,
    ::testing::Values(std::tuple{18u, 4u, 1ULL}, std::tuple{18u, 4u, 2ULL},
                      std::tuple{25u, 6u, 3ULL}, std::tuple{25u, 9u, 4ULL},
                      std::tuple{33u, 5u, 5ULL}, std::tuple{33u, 12u, 6ULL},
                      std::tuple{41u, 7u, 7ULL}, std::tuple{41u, 15u, 8ULL},
                      std::tuple{52u, 10u, 9ULL},
                      std::tuple{52u, 3u, 10ULL}));

// ---------------------------------------------------------------------------
// End-to-end on the lower-bound gadget networks.
// ---------------------------------------------------------------------------

TEST(GadgetEndToEnd, QuantumDecidesHw12Instances) {
  auto red = commcc::hw12_reduction(5);
  Rng rng(19);
  core::QuantumConfig cfg;
  cfg.oracle = core::OracleMode::kDirect;
  for (int t = 0; t < 4; ++t) {
    const bool inter = t % 2 == 0;
    auto [x, y] = commcc::random_disj_instance(red.k, inter, rng);
    auto g = red.instantiate(x, y);
    cfg.seed = 100 + t;
    auto rep = core::quantum_diameter_exact(g, cfg);
    EXPECT_EQ(rep.diameter, inter ? red.d2 : red.d1);
  }
}

TEST(GadgetEndToEnd, QuantumComputesSubdividedAchk16) {
  auto red = commcc::achk16_reduction(6);
  Rng rng(23);
  core::QuantumConfig cfg;
  cfg.oracle = core::OracleMode::kDirect;
  for (std::uint32_t d : {3u, 9u}) {
    for (bool inter : {false, true}) {
      auto [x, y] = commcc::random_disj_instance(red.k, inter, rng);
      auto g = commcc::subdivide_cut(red, x, y, d);
      cfg.seed = d * 2 + inter;
      auto rep = core::quantum_diameter_exact(g, cfg);
      EXPECT_EQ(rep.diameter, (inter ? red.d2 : red.d1) + d)
          << "d=" << d << " inter=" << inter;
    }
  }
}

TEST(GadgetEndToEnd, ApproxOnGadgetsWithinGuarantee) {
  auto red = commcc::achk16_reduction(8);
  Rng rng(29);
  auto [x, y] = commcc::random_disj_instance(red.k, true, rng);
  auto g = commcc::subdivide_cut(red, x, y, 6);
  core::QuantumConfig cfg;
  cfg.oracle = core::OracleMode::kDirect;
  auto rep = core::quantum_diameter_approx(g, cfg);
  ASSERT_FALSE(rep.aborted);
  const auto truth = graph::diameter(g);
  EXPECT_LE(rep.estimate, truth);
  EXPECT_GE(3 * rep.estimate, 2 * truth);
}

// ---------------------------------------------------------------------------
// Engine equivalence on full pipelines.
// ---------------------------------------------------------------------------

TEST(EngineEquivalence, ClassicalDiameterSequentialVsParallel) {
  auto g = random_graph(60, 10, 31);
  congest::NetworkConfig seq, par;
  par.engine = congest::Engine::kParallel;
  par.num_threads = 4;
  auto a = algos::classical_exact_diameter(g, seq);
  auto b = algos::classical_exact_diameter(g, par);
  EXPECT_EQ(a.diameter, b.diameter);
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
  EXPECT_EQ(a.stats.messages, b.stats.messages);
  EXPECT_EQ(a.stats.bits, b.stats.bits);
}

TEST(EngineEquivalence, EvaluationSequentialVsParallel) {
  auto g = random_graph(48, 8, 37);
  congest::NetworkConfig seq, par;
  par.engine = congest::Engine::kParallel;
  par.num_threads = 3;
  auto tree = algos::build_bfs_tree(g, 0, seq).tree;
  auto a = algos::evaluate_window_ecc(g, tree, 5, 2 * tree.height, seq);
  auto b = algos::evaluate_window_ecc(g, tree, 5, 2 * tree.height, par);
  EXPECT_EQ(a.max_ecc, b.max_ecc);
  EXPECT_EQ(a.window, b.window);
  EXPECT_EQ(a.tau_prime, b.tau_prime);
  EXPECT_EQ(a.stats.bits, b.stats.bits);
}

// ---------------------------------------------------------------------------
// Determinism of full reports.
// ---------------------------------------------------------------------------

TEST(Determinism, QuantumReportsAreBitIdentical) {
  auto g = random_graph(36, 7, 41);
  core::QuantumConfig cfg;
  cfg.seed = 77;
  auto a = core::quantum_diameter_exact(g, cfg);
  auto b = core::quantum_diameter_exact(g, cfg);
  EXPECT_EQ(a.diameter, b.diameter);
  EXPECT_EQ(a.total_rounds, b.total_rounds);
  EXPECT_EQ(a.costs.grover_iterations, b.costs.grover_iterations);
  EXPECT_EQ(a.costs.setup_invocations, b.costs.setup_invocations);
  EXPECT_EQ(a.costs.candidate_evaluations, b.costs.candidate_evaluations);
  EXPECT_EQ(a.distinct_branch_evaluations, b.distinct_branch_evaluations);
}

TEST(Determinism, DifferentSeedsMayDifferButStayCorrect) {
  auto g = random_graph(36, 7, 43);
  core::QuantumConfig cfg;
  std::vector<std::uint64_t> rounds;
  for (std::uint64_t s = 1; s <= 4; ++s) {
    cfg.seed = s;
    auto rep = core::quantum_diameter_exact(g, cfg);
    EXPECT_EQ(rep.diameter, 7u);
    rounds.push_back(rep.total_rounds);
  }
  // Randomized iteration counts: at least two distinct trajectories.
  std::sort(rounds.begin(), rounds.end());
  EXPECT_NE(rounds.front(), rounds.back());
}

// ---------------------------------------------------------------------------
// Failure injection: bandwidth starvation.
// ---------------------------------------------------------------------------

TEST(FailureInjection, StarvedBandwidthIsDetected) {
  auto g = random_graph(40, 8, 47);
  auto tree = algos::build_bfs_tree(g, 0).tree;
  congest::NetworkConfig starved;
  starved.bandwidth_bits = 4;  // far below the O(log n) requirement
  EXPECT_THROW(
      algos::evaluate_window_ecc(g, tree, 3, 2 * tree.height, starved),
      BandwidthViolationError);
}

TEST(FailureInjection, RecordPolicyCountsButCompletes) {
  auto g = random_graph(40, 8, 47);
  congest::NetworkConfig starved;
  starved.bandwidth_bits = 4;
  starved.policy = congest::BandwidthPolicy::kRecord;
  auto tree = algos::build_bfs_tree(g, 0, starved).tree;
  auto eval = algos::evaluate_window_ecc(g, tree, 3, 2 * tree.height, starved);
  EXPECT_GT(eval.stats.violations, 0u);
  // Delivery still happened (the recorder is an auditor, not a dropper),
  // so the result is still correct.
  auto num = graph::dfs_numbering(tree.to_bfs_tree());
  EXPECT_EQ(eval.max_ecc,
            graph::max_ecc_in_segment(g, num, 3, 2 * tree.height));
}

TEST(FailureInjection, GenerousBandwidthNeverViolates) {
  auto g = random_graph(40, 8, 47);
  congest::NetworkConfig roomy;
  roomy.bandwidth_bits = 256;
  auto out = algos::classical_exact_diameter(g, roomy);
  EXPECT_EQ(out.stats.violations, 0u);
  EXPECT_EQ(out.diameter, 8u);
}

// ---------------------------------------------------------------------------
// Cut metering composed with full drivers.
// ---------------------------------------------------------------------------

TEST(CutMeterIntegration, QuantumSolverOnGadget) {
  auto red = commcc::hw12_reduction(4);
  Rng rng(53);
  auto [x, y] = commcc::random_disj_instance(red.k, false, rng);
  commcc::DiameterSolver solver = [](const Graph& g,
                                     const congest::NetworkConfig& net) {
    core::QuantumConfig cfg;
    cfg.net = net;
    cfg.oracle = core::OracleMode::kDirect;
    auto rep = core::quantum_diameter_exact(g, cfg);
    return std::pair{rep.diameter,
                     static_cast<std::uint32_t>(rep.total_rounds)};
  };
  auto run = commcc::two_party_diameter_protocol(red, x, y, solver);
  EXPECT_TRUE(run.decided_disjoint);
  EXPECT_GT(run.cut_bits, 0u);
  // Theorem 10 charges full capacity; the actual traffic of the phases we
  // simulate is necessarily below it.
  EXPECT_GE(run.costs.qubits, run.cut_bits);
}

// ---------------------------------------------------------------------------
// Fuzz: masked evaluation on random ancestor-closed balls.
// ---------------------------------------------------------------------------

class MaskedEvaluationFuzz : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(MaskedEvaluationFuzz, MatchesMaskedCentralizedReference) {
  Rng rng(GetParam());
  auto g = random_graph(28 + rng.next_below(20), 4 + rng.next_below(8),
                        GetParam() * 17);
  const auto root = static_cast<NodeId>(rng.next_below(g.n()));
  auto tree = algos::build_bfs_tree(g, root).tree;
  // Random ancestor-closed mask: keep a depth ball plus the root.
  const std::uint32_t cut = 1 + rng.next_below(std::max(1u, tree.height));
  std::vector<bool> keep(g.n());
  for (NodeId v = 0; v < g.n(); ++v) keep[v] = tree.depth[v] <= cut;
  auto sub = graph::induced_subtree(tree.to_bfs_tree(), keep);
  auto num = graph::dfs_numbering(sub);

  const std::uint32_t steps = rng.next_below(2 * sub.height + 6);
  auto eval = algos::evaluate_window_ecc(g, tree, root, steps, {}, &keep);
  auto seg = graph::segment_window(num, root, steps);
  EXPECT_EQ(eval.window, seg.members) << "seed " << GetParam();
  EXPECT_EQ(eval.max_ecc,
            graph::max_ecc_in_segment(g, num, root, steps));
  for (NodeId v : eval.window) EXPECT_TRUE(keep[v]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaskedEvaluationFuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---------------------------------------------------------------------------
// Public-API precondition checks (core).
// ---------------------------------------------------------------------------

TEST(Preconditions, OptimizerRejectsBadInputs) {
  Rng rng(1);
  core::OptimizationProblem p;
  p.domain_size = 0;
  EXPECT_THROW(core::distributed_quantum_optimize(p, rng),
               InvalidArgumentError);
  p.domain_size = 4;
  p.evaluate = nullptr;
  EXPECT_THROW(core::distributed_quantum_optimize(p, rng),
               InvalidArgumentError);
  p.evaluate = [](std::size_t) { return std::int64_t{0}; };
  p.epsilon = 0;
  EXPECT_THROW(core::distributed_quantum_optimize(p, rng),
               InvalidArgumentError);
}

TEST(Preconditions, SearchRejectsBadInputs) {
  Rng rng(2);
  core::SearchProblem p;
  p.domain_size = 4;
  p.marked = nullptr;
  p.epsilon = 0.5;
  EXPECT_THROW(core::distributed_quantum_search(p, rng),
               InvalidArgumentError);
}

TEST(Preconditions, EvaluationRejectsBadMask) {
  auto g = random_graph(20, 4, 3);
  auto tree = algos::build_bfs_tree(g, 0).tree;
  std::vector<bool> not_containing_u0(g.n(), true);
  not_containing_u0[5] = false;
  EXPECT_THROW(
      algos::evaluate_window_ecc(g, tree, 5, 4, {}, &not_containing_u0),
      InvalidArgumentError);
  std::vector<bool> wrong_size(g.n() + 1, true);
  EXPECT_THROW(algos::evaluate_window_ecc(g, tree, 5, 4, {}, &wrong_size),
               InvalidArgumentError);
}

TEST(Preconditions, DisconnectedGraphsRejected) {
  std::vector<graph::Edge> edges{{0, 1}, {2, 3}};
  auto g = graph::Graph::from_edges(4, edges);
  EXPECT_THROW(algos::classical_exact_diameter(g), InvalidArgumentError);
  EXPECT_THROW(algos::elect_leader(g), InvalidArgumentError);
  EXPECT_THROW(graph::diameter(g), InvalidArgumentError);
}

// ---------------------------------------------------------------------------
// HPRW preparation across topology families (abort path included).
// ---------------------------------------------------------------------------

TEST(HprwIntegration, WorksAcrossFamilies) {
  Rng rng(59);
  std::vector<Graph> gs;
  gs.push_back(graph::make_hypercube(6));
  gs.push_back(graph::make_torus(6, 6));
  gs.push_back(graph::make_random_regular(48, 4, rng));
  for (const auto& g : gs) {
    auto out = algos::classical_approx_diameter(g);
    ASSERT_FALSE(out.aborted);
    const auto truth = graph::diameter(g);
    EXPECT_LE(out.estimate, truth);
    EXPECT_GE(3 * out.estimate, 2 * truth) << g.describe();
  }
}

}  // namespace
}  // namespace qc
