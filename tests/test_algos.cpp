#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "algos/bfs_tree.hpp"
#include "algos/diameter_classical.hpp"
#include "algos/evaluation.hpp"
#include "algos/hprw.hpp"
#include "algos/leader_election.hpp"
#include "algos/source_detection.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace qc::algos {
namespace {

using graph::Graph;
using graph::NodeId;

Graph random_graph(std::uint32_t n, std::uint32_t d, std::uint64_t seed) {
  Rng rng(seed);
  return graph::make_random_with_diameter(n, d, rng);
}

TEST(LeaderElection, FindsMaxIdInDiameterRounds) {
  auto g = random_graph(50, 8, 1);
  auto out = elect_leader(g);
  EXPECT_EQ(out.leader, 49u);
  const auto d = graph::diameter(g);
  EXPECT_LE(out.stats.rounds, d + 3);
}

TEST(LeaderElection, WorksOnCompleteAndPath) {
  EXPECT_EQ(elect_leader(graph::make_complete(8)).leader, 7u);
  auto out = elect_leader(graph::make_path(20));
  EXPECT_EQ(out.leader, 19u);
  EXPECT_LE(out.stats.rounds, 22u);
}

TEST(BfsTreeDistributed, MatchesCentralized) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    auto g = random_graph(40, 6, seed);
    const NodeId root = static_cast<NodeId>(seed * 7 % g.n());
    auto dist_out = build_bfs_tree(g, root);
    auto ref = graph::bfs_tree(g, root);
    EXPECT_EQ(dist_out.tree.parent, ref.parent) << "seed " << seed;
    EXPECT_EQ(dist_out.tree.depth, ref.depth);
    EXPECT_EQ(dist_out.tree.children, ref.children);
    EXPECT_EQ(dist_out.tree.height, ref.height);
    EXPECT_LE(dist_out.stats.rounds, ref.height + 4);
  }
}

TEST(BfsTreeDistributed, RoundsScaleWithEcc) {
  auto g = graph::make_path(64);
  auto out = build_bfs_tree(g, 0);
  EXPECT_GE(out.stats.rounds, 63u);
  EXPECT_LE(out.stats.rounds, 66u);
}

TEST(Convergecast, MaxAndArgmax) {
  auto g = random_graph(30, 5, 3);
  auto tree = build_bfs_tree(g, 0).tree;
  std::vector<std::uint64_t> vals(g.n()), ids(g.n());
  for (NodeId v = 0; v < g.n(); ++v) {
    vals[v] = (v * 37) % 101;
    ids[v] = v;
  }
  const std::uint32_t bits = qc::bit_width_for(101) + 1;
  auto out =
      aggregate_to_root(g, tree, AggregateOp::kMax, vals, ids, bits, bits);
  std::uint64_t best = 0, arg = 0;
  for (NodeId v = 0; v < g.n(); ++v) {
    if (vals[v] > best || (vals[v] == best && ids[v] > arg)) {
      best = vals[v];
      arg = ids[v];
    }
  }
  EXPECT_EQ(out.primary, best);
  EXPECT_EQ(out.secondary, arg);
  EXPECT_LE(out.stats.rounds, tree.height + 3);
}

TEST(Convergecast, Sum) {
  auto g = random_graph(25, 4, 4);
  auto tree = build_bfs_tree(g, 3).tree;
  std::vector<std::uint64_t> ones(g.n(), 1), zero(g.n(), 0);
  auto out =
      aggregate_to_root(g, tree, AggregateOp::kSum, ones, zero, 16, 1);
  EXPECT_EQ(out.primary, g.n());
}

TEST(Broadcast, ReachesEveryone) {
  auto g = random_graph(30, 6, 5);
  auto tree = build_bfs_tree(g, 2).tree;
  auto out = broadcast_from_root(g, tree, 12345, 20);
  EXPECT_EQ(out.status, PhaseStatus::kQuiesced);
  EXPECT_LE(out.stats.rounds, tree.height + 3);
}

TEST(EccentricityDistributed, MatchesCentralized) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    auto g = random_graph(35, 7, seed + 10);
    const NodeId root = static_cast<NodeId>(seed % g.n());
    auto out = compute_eccentricity(g, root);
    EXPECT_EQ(out.ecc, graph::eccentricity(g, root));
  }
}

// ---------------------------------------------------------------------------
// The Evaluation procedure (Figure 2).
// ---------------------------------------------------------------------------

/// Shared check: distributed Evaluation from u0 with `steps` token moves
/// must (a) visit exactly the window the centralized DFS numbering
/// predicts, with matching tau', and (b) return max ecc over that window.
void check_evaluation(const Graph& g, NodeId root, NodeId u0,
                      std::uint32_t steps) {
  auto tree_out = build_bfs_tree(g, root);
  const TreeState& tree = tree_out.tree;
  auto eval = evaluate_window_ecc(g, tree, u0, steps);

  auto num = graph::dfs_numbering(tree.to_bfs_tree());
  auto seg = graph::segment_window(num, u0, steps);
  EXPECT_EQ(eval.window, seg.members) << "u0=" << u0 << " steps=" << steps;
  EXPECT_EQ(eval.tau_prime, seg.tau_prime);

  // Figure 2's S is a superset of Definition 2's S(u0).
  const std::uint32_t mod = num.walk_length();
  for (NodeId v :
       graph::window_set(num, u0, std::min(steps, mod), mod)) {
    EXPECT_TRUE(std::binary_search(seg.members.begin(), seg.members.end(), v))
        << "Definition-2 member " << v << " missing from segment";
  }

  std::uint32_t expect_max = 0;
  for (NodeId v : seg.members) {
    expect_max = std::max(expect_max, graph::eccentricity(g, v));
  }
  EXPECT_EQ(eval.max_ecc, expect_max) << "u0=" << u0 << " steps=" << steps;
  EXPECT_EQ(eval.max_ecc, graph::max_ecc_in_segment(g, num, u0, steps));
}

TEST(Evaluation, SingleNodeWindow) {
  auto g = random_graph(20, 4, 6);
  check_evaluation(g, 0, 5, 0);  // S = {u0}: f = ecc(u0)
}

TEST(Evaluation, FullTourGivesDiameter) {
  auto g = random_graph(24, 5, 7);
  auto tree = build_bfs_tree(g, 0).tree;
  auto eval = evaluate_window_ecc(g, tree, 0, 2 * (g.n() - 1));
  EXPECT_EQ(eval.max_ecc, graph::diameter(g));
  EXPECT_EQ(eval.window.size(), g.n());
}

class EvaluationSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t,
                                                 std::uint32_t>> {};

TEST_P(EvaluationSweep, MatchesCentralizedReference) {
  const auto [n, d, steps] = GetParam();
  auto g = random_graph(n, d, n * 31 + d);
  const NodeId root = static_cast<NodeId>(n % 7);
  // Several starting points, including the root and far nodes.
  for (NodeId u0 : {root, static_cast<NodeId>(n - 1),
                    static_cast<NodeId>(n / 2), static_cast<NodeId>(1)}) {
    check_evaluation(g, root, u0, steps);
  }
}

INSTANTIATE_TEST_SUITE_P(
    WindowsAndSizes, EvaluationSweep,
    ::testing::Values(std::tuple{16u, 4u, 4u}, std::tuple{16u, 4u, 8u},
                      std::tuple{24u, 6u, 12u}, std::tuple{30u, 5u, 10u},
                      std::tuple{30u, 5u, 58u},   // full tour
                      std::tuple{30u, 5u, 200u},  // wraps multiple times
                      std::tuple{40u, 10u, 20u}, std::tuple{48u, 8u, 16u}));

TEST(Evaluation, PaperWindowWidthTwiceEcc) {
  // The exact setting of Section 3.2: steps = 2d with d = ecc(leader).
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    auto g = random_graph(36, 8, seed + 50);
    auto ecc_out = compute_eccentricity(g, 0);
    check_evaluation(g, 0, static_cast<NodeId>((seed * 13) % g.n()),
                     2 * ecc_out.ecc);
  }
}

TEST(Evaluation, RoundsLinearInStepsPlusDiameter) {
  auto g = random_graph(60, 6, 8);
  auto tree = build_bfs_tree(g, 0).tree;
  const std::uint32_t d = tree.height;
  auto eval = evaluate_window_ecc(g, tree, 5, 2 * d);
  // Figure 2 budget: 3*(2d) token (probe/reply/move per step) + (6d+2)
  // pipeline + (d+1) convergecast.
  EXPECT_EQ(eval.stats.rounds,
            EvaluationProgram::token_phase_rounds(2 * d) +
                (2 * (2 * d) + 2 * d + 2) + d + 1);
}

TEST(Evaluation, NoBandwidthViolations) {
  // The whole point of the tau'-schedule (Lemmas 2-4): message pipelining
  // without congestion. BandwidthPolicy::kEnforce is on by default, so a
  // clean run is itself the assertion; double-check the stats anyway.
  auto g = random_graph(50, 10, 9);
  auto tree = build_bfs_tree(g, 0).tree;
  auto eval = evaluate_window_ecc(g, tree, 7, 2 * tree.height);
  EXPECT_EQ(eval.stats.violations, 0u);
  EXPECT_LE(eval.stats.max_edge_bits,
            congest_bandwidth_bits(g.n()));
}

TEST(Evaluation, MaskedSubtreeRestrictsWindow) {
  auto g = random_graph(30, 6, 11);
  auto tree = build_bfs_tree(g, 0).tree;
  // Keep a ball around the root: ancestor-closed by construction.
  std::vector<bool> keep(g.n());
  for (NodeId v = 0; v < g.n(); ++v) keep[v] = tree.depth[v] <= 2;
  keep[tree.root] = true;
  auto sub = graph::induced_subtree(tree.to_bfs_tree(), keep);
  auto eval =
      evaluate_window_ecc(g, tree, tree.root, 6,
                           congest::NetworkConfig{}, &keep);
  for (NodeId v : eval.window) EXPECT_TRUE(keep[v]);

  auto num = graph::dfs_numbering(sub);
  auto seg = graph::segment_window(num, tree.root, 6);
  EXPECT_EQ(eval.window, seg.members);
}

TEST(UnitaryEvaluation, RevertMirrorsForwardExactly) {
  auto g = random_graph(40, 8, 61);
  auto tree = build_bfs_tree(g, 0).tree;
  auto out = evaluate_window_ecc_unitary(g, tree, 3, 2 * tree.height);
  // The Step 5 revert costs exactly the forward budget and moves exactly
  // the same traffic (mirrored) — certified by a real simulator pass
  // under bandwidth enforcement.
  EXPECT_EQ(out.revert_stats.rounds, out.forward.stats.rounds);
  EXPECT_EQ(out.revert_stats.bits, out.forward.stats.bits);
  EXPECT_EQ(out.revert_stats.messages, out.forward.stats.messages);
  EXPECT_EQ(out.revert_stats.violations, 0u);
  EXPECT_EQ(out.total_rounds,
            2ULL * out.forward.stats.rounds);
  // And the forward pass still computes the right value.
  auto num = graph::dfs_numbering(tree.to_bfs_tree());
  EXPECT_EQ(out.forward.max_ecc,
            graph::max_ecc_in_segment(g, num, 3, 2 * tree.height));
}

TEST(UnitaryEvaluation, WorksWithMask) {
  auto g = random_graph(30, 6, 67);
  auto tree = build_bfs_tree(g, 0).tree;
  std::vector<bool> keep(g.n());
  for (NodeId v = 0; v < g.n(); ++v) keep[v] = tree.depth[v] <= 2;
  auto out =
      evaluate_window_ecc_unitary(g, tree, tree.root, 6, {}, &keep);
  EXPECT_EQ(out.total_rounds, 2ULL * out.forward.stats.rounds);
  for (NodeId v : out.forward.window) EXPECT_TRUE(keep[v]);
}

TEST(UnitaryEvaluation, MatchesOptimizerCharge) {
  // The optimizer charges 2 * t_eval_forward for the Evaluation unitary;
  // the executable Step 5 replay validates that constant.
  auto g = random_graph(36, 7, 71);
  auto tree = build_bfs_tree(g, 0).tree;
  const std::uint32_t steps = 2 * tree.height;
  auto out = evaluate_window_ecc_unitary(g, tree, 1, steps);
  const std::uint32_t t_eval_forward =
      EvaluationProgram::token_phase_rounds(steps) +
      (2 * steps + 2 * tree.height + 2) + tree.height + 1;
  EXPECT_EQ(out.total_rounds, 2ULL * t_eval_forward);
}

// ---------------------------------------------------------------------------
// Classical exact diameter (Table 1 row 1).
// ---------------------------------------------------------------------------

class ClassicalDiameterSweep
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {
};

TEST_P(ClassicalDiameterSweep, ExactOnRandomGraphs) {
  const auto [n, d] = GetParam();
  auto g = random_graph(n, d, n + 1000 * d);
  auto out = classical_exact_diameter(g);
  EXPECT_EQ(out.diameter, d);
  EXPECT_EQ(out.leader, n - 1);
  // O(n + D) with the Figure 2 constants (3-round token steps over the
  // 2(n-1)-move tour plus the ~4n pipeline): rounds <= ~11n.
  EXPECT_LE(out.stats.rounds, 12 * n + 30);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ClassicalDiameterSweep,
    ::testing::Values(std::pair{12u, 3u}, std::pair{20u, 5u},
                      std::pair{32u, 8u}, std::pair{48u, 6u},
                      std::pair{64u, 16u}, std::pair{80u, 4u}));

TEST(ClassicalDiameter, StandardFamilies) {
  EXPECT_EQ(classical_exact_diameter(graph::make_path(20)).diameter, 19u);
  EXPECT_EQ(classical_exact_diameter(graph::make_cycle(15)).diameter, 7u);
  EXPECT_EQ(classical_exact_diameter(graph::make_star(12)).diameter, 2u);
  EXPECT_EQ(classical_exact_diameter(graph::make_complete(9)).diameter, 1u);
  EXPECT_EQ(classical_exact_diameter(graph::make_grid(4, 6)).diameter, 8u);
}

TEST(ClassicalDiameter, SingleAndTwoNodes) {
  EXPECT_EQ(classical_exact_diameter(graph::make_path(1)).diameter, 0u);
  EXPECT_EQ(classical_exact_diameter(graph::make_path(2)).diameter, 1u);
}

// ---------------------------------------------------------------------------
// Source detection ([LP13]) and the HPRW preparation.
// ---------------------------------------------------------------------------

TEST(SourceDetection, ExactDistancesToAllSources) {
  auto g = random_graph(40, 8, 13);
  std::vector<bool> is_source(g.n(), false);
  for (NodeId v : {0u, 7u, 13u, 25u, 39u}) is_source[v] = true;
  auto out = detect_sources(g, is_source);
  for (NodeId v = 0; v < g.n(); ++v) {
    for (const auto& [src, dist] : out.distances[v]) {
      EXPECT_EQ(dist, graph::bfs(g, src).dist[v])
          << "v=" << v << " src=" << src;
    }
    EXPECT_EQ(out.distances[v].size(), 5u);
  }
}

TEST(SourceDetection, RoundsLinearInSourcesPlusDiameter) {
  auto g = graph::make_path(50);
  std::vector<bool> is_source(g.n(), false);
  for (NodeId v = 0; v < 10; ++v) is_source[v * 5] = true;
  auto out = detect_sources(g, is_source);
  // |S| + D plus small constants; the cap in the driver is 4(n+|S|).
  EXPECT_LE(out.stats.rounds, 10u + 49u + 10u);
}

TEST(SourceDetection, SingleSourceIsJustBfs) {
  auto g = random_graph(25, 5, 14);
  std::vector<bool> is_source(g.n(), false);
  is_source[6] = true;
  auto out = detect_sources(g, is_source);
  auto ref = graph::bfs(g, 6);
  for (NodeId v = 0; v < g.n(); ++v) {
    EXPECT_EQ(out.distances[v].at(6), ref.dist[v]);
  }
}

TEST(BatchedEcc, MatchesCentralized) {
  auto g = random_graph(30, 6, 15);
  std::vector<bool> is_source(g.n(), false);
  for (NodeId v : {2u, 9u, 17u, 28u}) is_source[v] = true;
  auto det = detect_sources(g, is_source);
  auto tree = build_bfs_tree(g, 0).tree;
  auto out = batched_eccentricities(g, tree, det.distances);
  ASSERT_EQ(out.ecc.size(), 4u);
  for (const auto& [src, e] : out.ecc) {
    EXPECT_EQ(e, graph::eccentricity(g, src)) << "src=" << src;
  }
}

TEST(HprwPreparation, ProducesValidR) {
  auto g = random_graph(60, 10, 16);
  const std::uint32_t s = 8;
  auto prep = hprw_preparation(g, s);
  ASSERT_FALSE(prep.aborted);
  EXPECT_EQ(prep.r_size, s);
  // R is exactly the s closest nodes to w by (distance, id).
  std::vector<std::pair<std::uint32_t, NodeId>> order;
  auto dw = graph::bfs(g, prep.w).dist;
  for (NodeId v = 0; v < g.n(); ++v) order.push_back({dw[v], v});
  std::sort(order.begin(), order.end());
  for (std::uint32_t i = 0; i < g.n(); ++i) {
    EXPECT_EQ(prep.r_mask[order[i].second], i < s)
        << "rank " << i << " node " << order[i].second;
  }
  // R is ancestor-closed in BFS(w) (needed by the quantum phase).
  for (NodeId v = 0; v < g.n(); ++v) {
    if (prep.r_mask[v] && v != prep.w) {
      EXPECT_TRUE(prep.r_mask[prep.tree_w.parent[v]]);
    }
  }
  EXPECT_EQ(prep.ecc_w, graph::eccentricity(g, prep.w));
}

TEST(HprwPreparation, WMaximizesDistanceToSample) {
  auto g = random_graph(50, 8, 17);
  auto prep = hprw_preparation(g, 6);
  ASSERT_FALSE(prep.aborted);
  ASSERT_FALSE(prep.sample.empty());
  auto dist_to_sample = [&](NodeId v) {
    std::uint32_t best = graph::kUnreachable;
    for (NodeId s : prep.sample) {
      best = std::min(best, graph::bfs(g, s).dist[v]);
    }
    return best;
  };
  const std::uint32_t dw = dist_to_sample(prep.w);
  for (NodeId v = 0; v < g.n(); ++v) {
    EXPECT_LE(dist_to_sample(v), dw);
  }
}

class ClassicalApproxSweep
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {
};

TEST_P(ClassicalApproxSweep, EstimateWithinGuarantee) {
  const auto [n, d] = GetParam();
  auto g = random_graph(n, d, 3 * n + d);
  auto out = classical_approx_diameter(g);
  ASSERT_FALSE(out.aborted);
  const std::uint32_t diam = graph::diameter(g);
  EXPECT_LE(out.estimate, diam);
  EXPECT_GE(3 * out.estimate, 2 * diam)  // estimate >= 2D/3
      << "n=" << n << " d=" << d << " est=" << out.estimate;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ClassicalApproxSweep,
    ::testing::Values(std::pair{30u, 6u}, std::pair{50u, 10u},
                      std::pair{64u, 5u}, std::pair{80u, 12u},
                      std::pair{100u, 8u}));

TEST(ClassicalApprox, ExplicitSmallS) {
  auto g = random_graph(60, 9, 19);
  auto out = classical_approx_diameter(g, 4);
  ASSERT_FALSE(out.aborted);
  EXPECT_EQ(out.s_used, 4u);
  const std::uint32_t diam = graph::diameter(g);
  EXPECT_LE(out.estimate, diam);
  EXPECT_GE(3 * out.estimate, 2 * diam);
}

}  // namespace
}  // namespace qc::algos
