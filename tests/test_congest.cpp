#include <gtest/gtest.h>

#include <memory>

#include "congest/message.hpp"
#include "congest/network.hpp"
#include "graph/generators.hpp"
#include "util/error.hpp"

namespace qc::congest {
namespace {

using graph::NodeId;

TEST(Message, FieldsAndSize) {
  Message m;
  m.push(5, 4).push(1, 1).push(1023, 10);
  EXPECT_EQ(m.num_fields(), 3u);
  EXPECT_EQ(m.field(0), 5u);
  EXPECT_EQ(m.field(2), 1023u);
  EXPECT_EQ(m.size_bits(), 15u);
}

TEST(Message, RejectsOverflowingValue) {
  Message m;
  EXPECT_THROW(m.push(16, 4), InvalidArgumentError);
  EXPECT_THROW(m.push(0, 0), InvalidArgumentError);
  EXPECT_THROW(m.push(0, 65), InvalidArgumentError);
}

TEST(Message, SixtyFourBitField) {
  Message m;
  m.push(~0ULL, 64);
  EXPECT_EQ(m.field(0), ~0ULL);
}

/// Sends its own id to every neighbor each round; records what it hears.
class GossipProgram : public NodeProgram {
 public:
  void on_start(NodeContext& ctx) override {
    ctx.broadcast(Message().push(ctx.id(), ctx.id_bits()));
  }
  void on_round(NodeContext& ctx) override {
    for (const auto& in : ctx.inbox()) {
      heard.push_back(static_cast<NodeId>(in.msg.field(0)));
    }
    ctx.vote_halt();
  }
  std::vector<NodeId> heard;
};

TEST(Network, DeliversToNeighborsNextRound) {
  auto g = graph::make_path(3);
  Network net(g);
  net.init_programs([](NodeId) { return std::make_unique<GossipProgram>(); });
  auto stats = net.run_rounds(1);
  EXPECT_EQ(stats.rounds, 1u);
  EXPECT_EQ(net.program_as<GossipProgram>(1).heard,
            (std::vector<NodeId>{0, 2}));
  EXPECT_EQ(net.program_as<GossipProgram>(0).heard,
            (std::vector<NodeId>{1}));
  // 4 directed deliveries: 0->1, 1->0, 1->2, 2->1.
  EXPECT_EQ(stats.messages, 4u);
}

TEST(Network, InboxIsInPortOrder) {
  auto g = graph::make_star(5);  // center 0
  Network net(g);
  net.init_programs([](NodeId) { return std::make_unique<GossipProgram>(); });
  net.run_rounds(1);
  EXPECT_EQ(net.program_as<GossipProgram>(0).heard,
            (std::vector<NodeId>{1, 2, 3, 4}));
}

class DoubleSendProgram : public NodeProgram {
 public:
  void on_start(NodeContext& ctx) override {
    ctx.send(0, Message().push(1, 1));
    ctx.send(0, Message().push(1, 1));  // must throw
  }
  void on_round(NodeContext& ctx) override { ctx.vote_halt(); }
};

TEST(Network, RejectsTwoMessagesPerPortPerRound) {
  auto g = graph::make_path(2);
  Network net(g);
  EXPECT_THROW(
      {
        net.init_programs(
            [](NodeId) { return std::make_unique<DoubleSendProgram>(); });
        net.run_rounds(1);
      },
      InvalidArgumentError);
}

class FatMessageProgram : public NodeProgram {
 public:
  explicit FatMessageProgram(std::uint32_t bits) : bits_(bits) {}
  void on_start(NodeContext& ctx) override {
    Message m;
    for (std::uint32_t sent = 0; sent < bits_; sent += 32) {
      m.push(0, std::min(32u, bits_ - sent));
    }
    if (ctx.id() == 0) ctx.send(0, m);
  }
  void on_round(NodeContext& ctx) override { ctx.vote_halt(); }

 private:
  std::uint32_t bits_;
};

TEST(Network, EnforcesBandwidth) {
  auto g = graph::make_path(2);
  NetworkConfig cfg;
  cfg.bandwidth_bits = 8;
  Network net(g, cfg);
  net.init_programs(
      [](NodeId) { return std::make_unique<FatMessageProgram>(9); });
  EXPECT_THROW(net.run_rounds(1), BandwidthViolationError);
}

TEST(Network, RecordsViolationsWhenAsked) {
  auto g = graph::make_path(2);
  NetworkConfig cfg;
  cfg.bandwidth_bits = 8;
  cfg.policy = BandwidthPolicy::kRecord;
  Network net(g, cfg);
  net.init_programs(
      [](NodeId) { return std::make_unique<FatMessageProgram>(9); });
  auto stats = net.run_rounds(1);
  EXPECT_EQ(stats.violations, 1u);
  EXPECT_EQ(stats.max_edge_bits, 9u);
}

TEST(Network, ExactBandwidthIsFine) {
  auto g = graph::make_path(2);
  NetworkConfig cfg;
  cfg.bandwidth_bits = 8;
  Network net(g, cfg);
  net.init_programs(
      [](NodeId) { return std::make_unique<FatMessageProgram>(8); });
  auto stats = net.run_rounds(1);
  EXPECT_EQ(stats.violations, 0u);
  EXPECT_EQ(stats.max_edge_bits, 8u);
}

/// A single wave from node 0: each node broadcasts once upon first
/// activation and records its hop count. Used to test multi-round flow,
/// halted-node wakeup and engine equivalence.
class RelayProgram : public NodeProgram {
 public:
  void on_start(NodeContext& ctx) override {
    if (ctx.id() == 0) {
      activated = true;
      ctx.broadcast(Message().push(1, 16));
    }
  }
  void on_round(NodeContext& ctx) override {
    if (!activated) {
      for (const auto& in : ctx.inbox()) {
        activated = true;
        hops_seen = static_cast<std::uint32_t>(in.msg.field(0));
        ctx.broadcast(Message().push(hops_seen + 1, 16));
        break;
      }
    }
    ctx.vote_halt();
  }
  bool activated = false;
  std::uint32_t hops_seen = 0;
};

TEST(Network, QuiescenceAfterWaveDies) {
  auto g = graph::make_path(6);
  Network net(g);
  net.init_programs([](NodeId) { return std::make_unique<RelayProgram>(); });
  auto stats = net.run_until_quiescent(100);
  EXPECT_TRUE(stats.quiesced);
  EXPECT_EQ(stats.rounds, 6u);  // 5 hops + 1 quiet round to settle halts
  EXPECT_EQ(net.program_as<RelayProgram>(5).hops_seen, 5u);
}

TEST(Network, RunRoundsCountsExactly) {
  auto g = graph::make_cycle(4);
  Network net(g);
  net.init_programs([](NodeId) { return std::make_unique<GossipProgram>(); });
  auto s1 = net.run_rounds(3);
  EXPECT_EQ(s1.rounds, 3u);
  EXPECT_EQ(net.stats().rounds, 3u);
  auto s2 = net.run_rounds(2);
  EXPECT_EQ(s2.rounds, 2u);
  EXPECT_EQ(net.stats().rounds, 5u);
}

TEST(Network, PerNodeRngIsDeterministic) {
  auto g = graph::make_path(4);
  std::uint64_t first[4], second[4];
  for (auto* arr : {first, second}) {
    NetworkConfig cfg;
    cfg.seed = 123;
    Network net(g, cfg);
    class RngProbe : public NodeProgram {
     public:
      explicit RngProbe(std::uint64_t* out) : out_(out) {}
      void on_round(NodeContext& ctx) override {
        out_[ctx.id()] = ctx.rng()();
        ctx.vote_halt();
      }
      std::uint64_t* out_;
    };
    net.init_programs(
        [arr](NodeId) { return std::make_unique<RngProbe>(arr); });
    net.run_rounds(1);
  }
  for (int i = 0; i < 4; ++i) EXPECT_EQ(first[i], second[i]);
  EXPECT_NE(first[0], first[1]);
}

TEST(Network, ParallelEngineMatchesSequential) {
  graph::GraphBuilder b;
  Rng rng(42);
  auto g = graph::make_connected_er(64, 0.05, rng);

  auto run = [&](Engine engine) {
    NetworkConfig cfg;
    cfg.engine = engine;
    cfg.num_threads = 4;
    Network net(g, cfg);
    net.init_programs(
        [](NodeId) { return std::make_unique<RelayProgram>(); });
    auto stats = net.run_until_quiescent(500);
    std::vector<std::uint32_t> hops(g.n());
    for (NodeId v = 0; v < g.n(); ++v) {
      hops[v] = net.program_as<RelayProgram>(v).hops_seen;
    }
    return std::pair{stats, hops};
  };
  auto [seq_stats, seq_hops] = run(Engine::kSequential);
  auto [par_stats, par_hops] = run(Engine::kParallel);
  EXPECT_EQ(seq_stats.rounds, par_stats.rounds);
  EXPECT_EQ(seq_stats.messages, par_stats.messages);
  EXPECT_EQ(seq_stats.bits, par_stats.bits);
  EXPECT_EQ(seq_hops, par_hops);
}

TEST(NodeContext, PortLookup) {
  auto g = graph::make_star(4);
  Network net(g);
  class PortProbe : public NodeProgram {
   public:
    void on_round(NodeContext& ctx) override {
      if (ctx.id() == 0) {
        EXPECT_EQ(ctx.neighbor(ctx.port_to(2)), 2u);
        EXPECT_THROW(ctx.port_to(0), InvalidArgumentError);
        EXPECT_EQ(ctx.degree(), 3u);
      } else {
        EXPECT_EQ(ctx.degree(), 1u);
        EXPECT_EQ(ctx.neighbor(0), 0u);
      }
      EXPECT_EQ(ctx.n(), 4u);
      ctx.vote_halt();
    }
  };
  net.init_programs([](NodeId) { return std::make_unique<PortProbe>(); });
  net.run_rounds(1);
}

TEST(Network, StatsAccumulateMemoryHighWater) {
  auto g = graph::make_path(3);
  class MemProbe : public NodeProgram {
   public:
    void on_round(NodeContext& ctx) override {
      grow += 100;
      ctx.vote_halt();
    }
    std::uint64_t memory_bits() const override { return grow; }
    std::uint64_t grow = 0;
  };
  Network net(g);
  net.init_programs([](NodeId) { return std::make_unique<MemProbe>(); });
  auto stats = net.run_rounds(1);
  EXPECT_EQ(stats.max_node_memory_bits, 100u);
}

}  // namespace
}  // namespace qc::congest
