// Tests for qc::metrics: golden-schema pinning of the JSONL export, span
// hierarchy, and the enablement contract (disabled registry = bit-identical
// algorithm outputs, enabled registry only observes).
//
// The test named ExternalFileValidates doubles as the CI schema validator:
// set QC_METRICS_VALIDATE=<path to a .jsonl capture> and it validates that
// file instead of skipping.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/quantum_diameter.hpp"
#include "core/quantum_radius.hpp"
#include "graph/generators.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace qc {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON value parser — just enough for the flat objects the exporter
// emits: string/number scalars and arrays of numbers. Throws on any input
// the schema does not allow, which is exactly what a validator wants.

struct JsonValue {
  enum class Kind { kString, kNumber, kNumberArray } kind = Kind::kNumber;
  std::string str;
  double num = 0.0;
  std::vector<double> arr;
};

using JsonObject = std::map<std::string, JsonValue>;

class MiniJsonParser {
 public:
  explicit MiniJsonParser(const std::string& text) : s_(text) {}

  JsonObject parse_object() {
    expect('{');
    JsonObject obj;
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      const std::string key = parse_string();
      expect(':');
      obj[key] = parse_value();
      const char c = next();
      if (c == '}') break;
      if (c != ',') throw std::runtime_error("expected , or } in object");
    }
    return obj;
  }

 private:
  JsonValue parse_value() {
    JsonValue v;
    const char c = peek();
    if (c == '"') {
      v.kind = JsonValue::Kind::kString;
      v.str = parse_string();
    } else if (c == '[') {
      ++pos_;
      v.kind = JsonValue::Kind::kNumberArray;
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      for (;;) {
        v.arr.push_back(parse_number());
        const char d = next();
        if (d == ']') break;
        if (d != ',') throw std::runtime_error("expected , or ] in array");
      }
    } else {
      v.kind = JsonValue::Kind::kNumber;
      v.num = parse_number();
    }
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) throw std::runtime_error("bad escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) throw std::runtime_error("bad \\u");
            out += static_cast<char>(
                std::stoi(s_.substr(pos_, 4), nullptr, 16));
            pos_ += 4;
            break;
          }
          default: throw std::runtime_error("unknown escape");
        }
      } else {
        out += c;
      }
    }
    expect('"');
    return out;
  }

  double parse_number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) throw std::runtime_error("expected number");
    return std::stod(s_.substr(start, pos_ - start));
  }

  char peek() {
    if (pos_ >= s_.size()) throw std::runtime_error("unexpected end");
    return s_[pos_];
  }
  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }
  void expect(char c) {
    if (next() != c) {
      throw std::runtime_error(std::string("expected '") + c + "'");
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::vector<JsonObject> parse_jsonl(std::istream& is) {
  std::vector<JsonObject> out;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    MiniJsonParser p(line);
    out.push_back(p.parse_object());
  }
  return out;
}

std::set<std::string> keys_of(const JsonObject& obj) {
  std::set<std::string> ks;
  for (const auto& [k, v] : obj) ks.insert(k);
  return ks;
}

// Full schema-v1 validation of a parsed capture. Used both on in-process
// exports and (via QC_METRICS_VALIDATE) on files produced by the CLI.
void validate_capture(const std::vector<JsonObject>& lines) {
  ASSERT_FALSE(lines.empty());

  // Line 1 is the meta record carrying the schema version.
  const JsonObject& meta = lines.front();
  ASSERT_EQ(meta.at("type").str, "meta");
  EXPECT_EQ(keys_of(meta),
            (std::set<std::string>{"type", "schema_version", "producer"}));
  EXPECT_EQ(meta.at("schema_version").num, metrics::kSchemaVersion);

  const std::set<std::string> counter_keys{"type", "name", "label", "value"};
  const std::set<std::string> gauge_keys{"type", "name", "label", "value"};
  const std::set<std::string> histogram_keys{"type",   "name",  "bounds",
                                             "counts", "count", "sum"};
  const std::set<std::string> span_keys{"type",        "id",     "parent",
                                        "name",        "start_ns",
                                        "duration_ns", "rounds", "messages",
                                        "bits"};

  std::set<std::uint64_t> span_ids;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const JsonObject& o = lines[i];
    const std::string& type = o.at("type").str;
    if (type == "counter") {
      EXPECT_EQ(keys_of(o), counter_keys) << "line " << i + 1;
      EXPECT_GE(o.at("value").num, 0.0);
    } else if (type == "gauge") {
      EXPECT_EQ(keys_of(o), gauge_keys) << "line " << i + 1;
    } else if (type == "histogram") {
      EXPECT_EQ(keys_of(o), histogram_keys) << "line " << i + 1;
      const auto& bounds = o.at("bounds").arr;
      const auto& counts = o.at("counts").arr;
      // One overflow bucket past the last bound.
      EXPECT_EQ(counts.size(), bounds.size() + 1) << "line " << i + 1;
      EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end()))
          << "line " << i + 1;
      double total = 0;
      for (double c : counts) total += c;
      EXPECT_EQ(total, o.at("count").num) << "line " << i + 1;
    } else if (type == "span") {
      EXPECT_EQ(keys_of(o), span_keys) << "line " << i + 1;
      const auto id = static_cast<std::uint64_t>(o.at("id").num);
      const auto parent = static_cast<std::uint64_t>(o.at("parent").num);
      EXPECT_GE(id, 1u);
      // Spans are exported in id order, so a parent always precedes its
      // children; 0 means top-level.
      if (parent != 0) {
        EXPECT_TRUE(span_ids.count(parent) == 1)
            << "span " << id << " has unknown parent " << parent;
      }
      span_ids.insert(id);
    } else {
      ADD_FAILURE() << "unknown record type '" << type << "' on line "
                    << i + 1;
    }
  }
}

graph::Graph test_graph(std::uint32_t n, std::uint32_t d,
                        std::uint64_t seed) {
  Rng rng(seed);
  return graph::make_random_with_diameter(n, d, rng);
}

// ---------------------------------------------------------------------------

TEST(Metrics, DisabledByDefaultAndFreeFunctionsNoOp) {
  ASSERT_EQ(metrics::global(), nullptr);
  EXPECT_FALSE(metrics::enabled());
  // All free functions must be harmless no-ops with no registry installed.
  metrics::count("m.c");
  metrics::gauge("m.g", 1.0);
  metrics::observe("m.h", 2.0);
  metrics::ScopedTimer t("m.span");
  t.add(1, 2, 3);
}

TEST(Metrics, CounterAccumulatesPerLabel) {
  metrics::MetricsRegistry reg;
  reg.add_counter("hits", 1);
  reg.add_counter("hits", 2);
  reg.add_counter("hits", 5, "labeled");
  EXPECT_EQ(reg.counter_value("hits"), 3u);
  EXPECT_EQ(reg.counter_value("hits", "labeled"), 5u);
  EXPECT_EQ(reg.counter_value("absent"), 0u);
}

TEST(Metrics, HistogramBucketingAndIdempotentRegistration) {
  metrics::MetricsRegistry reg;
  reg.register_histogram("lat", {1.0, 10.0, 100.0});
  // Re-registration with different bounds keeps the first bounds.
  reg.register_histogram("lat", {5.0});
  reg.observe("lat", 0.5);    // bucket <=1
  reg.observe("lat", 10.0);   // bucket <=10 (bounds are inclusive)
  reg.observe("lat", 99.0);   // bucket <=100
  reg.observe("lat", 1e6);    // overflow bucket
  std::ostringstream os;
  reg.write_jsonl(os);
  std::istringstream is(os.str());
  const auto lines = parse_jsonl(is);
  const JsonObject* hist = nullptr;
  for (const auto& o : lines) {
    if (o.at("type").str == "histogram" && o.at("name").str == "lat") {
      hist = &o;
    }
  }
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->at("bounds").arr, (std::vector<double>{1.0, 10.0, 100.0}));
  EXPECT_EQ(hist->at("counts").arr, (std::vector<double>{1, 1, 1, 1}));
  EXPECT_EQ(hist->at("count").num, 4.0);
  EXPECT_EQ(hist->at("sum").num, 0.5 + 10.0 + 99.0 + 1e6);
}

TEST(Metrics, GoldenSchemaRoundTrip) {
  metrics::MetricsRegistry reg;
  reg.add_counter("c.one", 7, "with \"quotes\"\n");
  reg.set_gauge("g.pi", 3.25);
  reg.set_gauge("g.pi", 4.5);  // last write wins
  reg.observe("h.auto", 3.0);  // auto-registered power-of-two bounds
  {
    metrics::PhaseTimer outer(&reg, "outer");
    metrics::PhaseTimer inner(&reg, "inner");
    inner.add(10, 20, 30);
    inner.finish();
    outer.add(100, 200, 300);
  }

  std::ostringstream os;
  reg.write_jsonl(os);
  std::istringstream is(os.str());
  const auto lines = parse_jsonl(is);
  validate_capture(lines);

  std::map<std::string, const JsonObject*> by_name;
  for (const auto& o : lines) {
    auto it = o.find("name");
    if (it != o.end()) by_name[it->second.str] = &o;
  }
  ASSERT_TRUE(by_name.count("c.one"));
  EXPECT_EQ(by_name["c.one"]->at("value").num, 7.0);
  EXPECT_EQ(by_name["c.one"]->at("label").str, "with \"quotes\"\n");
  ASSERT_TRUE(by_name.count("g.pi"));
  EXPECT_EQ(by_name["g.pi"]->at("value").num, 4.5);
  ASSERT_TRUE(by_name.count("h.auto"));
  EXPECT_EQ(by_name["h.auto"]->at("count").num, 1.0);

  // Span hierarchy: inner's parent is outer; both carry their costs.
  ASSERT_TRUE(by_name.count("outer"));
  ASSERT_TRUE(by_name.count("inner"));
  const JsonObject& outer = *by_name["outer"];
  const JsonObject& inner = *by_name["inner"];
  EXPECT_EQ(inner.at("parent").num, outer.at("id").num);
  EXPECT_EQ(outer.at("parent").num, 0.0);
  EXPECT_EQ(inner.at("rounds").num, 10.0);
  EXPECT_EQ(inner.at("messages").num, 20.0);
  EXPECT_EQ(inner.at("bits").num, 30.0);
  EXPECT_EQ(outer.at("rounds").num, 100.0);
}

TEST(Metrics, SpanStackIsPerRegistry) {
  // A span begun against registry A must not become the parent of a span
  // in registry B even when both are open on the same thread.
  metrics::MetricsRegistry a, b;
  metrics::PhaseTimer ta(&a, "a.outer");
  metrics::PhaseTimer tb(&b, "b.outer");
  metrics::PhaseTimer tb2(&b, "b.inner");
  tb2.finish();
  tb.finish();
  ta.finish();
  const auto spans_a = a.spans();
  const auto spans_b = b.spans();
  ASSERT_EQ(spans_a.size(), 1u);
  ASSERT_EQ(spans_b.size(), 2u);
  EXPECT_EQ(spans_a[0].parent, 0u);
  EXPECT_EQ(spans_b[0].parent, 0u);
  EXPECT_EQ(spans_b[1].parent, spans_b[0].id);
}

// The tentpole's enablement contract: installing a registry must not change
// a single bit of any algorithm output or RunStats-derived report field.
TEST(Metrics, EnabledRunIsBitIdenticalToDisabledRun) {
  const auto g = test_graph(48, 6, 91);
  core::QuantumConfig cfg;
  cfg.seed = 5;
  cfg.oracle = core::OracleMode::kSimulate;

  const auto baseline = core::quantum_diameter_exact(g, cfg);

  metrics::MetricsRegistry reg;
  metrics::set_global(&reg);
  const auto instrumented = core::quantum_diameter_exact(g, cfg);
  metrics::set_global(nullptr);

  const auto again = core::quantum_diameter_exact(g, cfg);

  for (const auto* rep : {&instrumented, &again}) {
    EXPECT_EQ(rep->diameter, baseline.diameter);
    EXPECT_EQ(rep->leader, baseline.leader);
    EXPECT_EQ(rep->ecc_leader, baseline.ecc_leader);
    EXPECT_EQ(rep->total_rounds, baseline.total_rounds);
    EXPECT_EQ(rep->init_rounds, baseline.init_rounds);
    EXPECT_EQ(rep->t_setup, baseline.t_setup);
    EXPECT_EQ(rep->t_eval_forward, baseline.t_eval_forward);
    EXPECT_EQ(rep->costs.setup_invocations, baseline.costs.setup_invocations);
    EXPECT_EQ(rep->costs.grover_iterations, baseline.costs.grover_iterations);
    EXPECT_EQ(rep->costs.candidate_evaluations,
              baseline.costs.candidate_evaluations);
    EXPECT_EQ(rep->distinct_branch_evaluations,
              baseline.distinct_branch_evaluations);
    EXPECT_EQ(rep->reference_bfs_runs, baseline.reference_bfs_runs);
    EXPECT_EQ(rep->budget_exhausted, baseline.budget_exhausted);
    EXPECT_EQ(rep->per_node_memory_qubits, baseline.per_node_memory_qubits);
    EXPECT_EQ(rep->leader_memory_qubits, baseline.leader_memory_qubits);
    EXPECT_EQ(rep->subroutine_failed, baseline.subroutine_failed);
    EXPECT_EQ(rep->failure_reason, baseline.failure_reason);
  }

  // The instrumented run actually produced telemetry.
  EXPECT_GT(reg.counter_value("core.branch_evaluations"), 0u);
  EXPECT_GT(reg.counter_value("congest.rounds"), 0u);
  EXPECT_FALSE(reg.spans().empty());
}

TEST(Metrics, QuantumRunEmitsValidatedCapture) {
  const auto g = test_graph(40, 5, 17);
  core::QuantumConfig cfg;
  cfg.seed = 3;
  cfg.oracle = core::OracleMode::kDirect;

  metrics::MetricsRegistry reg;
  metrics::set_global(&reg);
  const auto rep = core::quantum_radius(g, cfg);
  metrics::set_global(nullptr);
  EXPECT_FALSE(rep.subroutine_failed);

  std::ostringstream os;
  reg.write_jsonl(os);
  std::istringstream is(os.str());
  const auto lines = parse_jsonl(is);
  validate_capture(lines);

  // The root span's rounds equal the report's model-level round count.
  const auto spans = reg.spans();
  ASSERT_FALSE(spans.empty());
  bool found_root = false;
  for (const auto& s : spans) {
    if (s.name == "core.quantum_radius") {
      found_root = true;
      EXPECT_TRUE(s.complete);
      EXPECT_EQ(s.rounds, rep.total_rounds);
    }
  }
  EXPECT_TRUE(found_root);
  EXPECT_GT(reg.counter_value("qsim.grover_iterations", "maximize"), 0u);
  EXPECT_GT(reg.counter_value("core.grover_iterations", "quantum_radius"),
            0u);
}

// CI hook: validate a capture produced by `qcongest --metrics-out`.
TEST(Metrics, ExternalFileValidates) {
  const char* path = std::getenv("QC_METRICS_VALIDATE");
  if (path == nullptr || *path == '\0') {
    GTEST_SKIP() << "QC_METRICS_VALIDATE not set";
  }
  std::ifstream is(path);
  ASSERT_TRUE(is.good()) << "cannot open " << path;
  const auto lines = parse_jsonl(is);
  validate_capture(lines);

  // A CLI capture must cover the run with spans: the root cli.* span and
  // the model-level costs attributed below it.
  std::uint64_t root_id = 0, root_ns = 0, child_ns = 0;
  for (const auto& o : lines) {
    if (o.at("type").str != "span") continue;
    const auto& name = o.at("name").str;
    if (name.rfind("cli.", 0) == 0 &&
        static_cast<std::uint64_t>(o.at("parent").num) == 0) {
      root_id = static_cast<std::uint64_t>(o.at("id").num);
      root_ns = static_cast<std::uint64_t>(o.at("duration_ns").num);
    }
  }
  ASSERT_NE(root_id, 0u) << "no top-level cli.* span in capture";
  for (const auto& o : lines) {
    if (o.at("type").str != "span") continue;
    if (static_cast<std::uint64_t>(o.at("parent").num) == root_id) {
      child_ns += static_cast<std::uint64_t>(o.at("duration_ns").num);
    }
  }
  ASSERT_GT(root_ns, 0u);
  // Spans must cover >= 90% of the command's wall time. Commands that
  // finish in under a millisecond are all fixed overhead (flag parsing,
  // stdout flushing) and carry no signal, so the bar applies to real
  // workloads only.
  if (root_ns >= 1'000'000) {
    EXPECT_GE(static_cast<double>(child_ns),
              0.9 * static_cast<double>(root_ns));
  }
}

}  // namespace
}  // namespace qc
