// Property-based differential harness: every quantum front-end must agree
// with the centralized classical references (graph::diameter / radius /
// all_eccentricities) across random seeds and graph families. A mismatch is
// shrunk to the smallest failing n before being reported, so a red run
// prints a minimal (family, n, d, seed) reproduction tuple.
//
// The quantum confidence parameter is cranked to delta = 1e-6 so the
// whp-guarantees are ironclad at this case count: any disagreement is a
// real bug, not an unlucky sample.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "algos/bfs_tree.hpp"
#include "algos/leader_election.hpp"
#include "congest/shard/sharded_network.hpp"
#include "congest/trace.hpp"
#include "core/quantum_approx.hpp"
#include "core/quantum_decision.hpp"
#include "core/quantum_diameter.hpp"
#include "core/quantum_radius.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace qc {
namespace {

struct CaseId {
  std::string family;  // "diam" | "path" | "star" | "chorded-tree"
  std::uint32_t n = 0;
  std::uint32_t d = 0;        // target diameter ("diam") or unused
  std::uint64_t seed = 0;     // generator seed (random families)

  std::string describe() const {
    std::ostringstream os;
    os << "(" << family << ", n=" << n << ", d=" << d << ", seed=" << seed
       << ")";
    return os.str();
  }
};

graph::Graph build(const CaseId& c) {
  if (c.family == "path") return graph::make_path(c.n);
  if (c.family == "star") return graph::make_star(c.n);
  if (c.family == "chorded-tree") {
    // A random tree plus chords: connected ER keeps a spanning tree and
    // sprinkles extra edges, which is exactly that shape at low p.
    Rng rng(c.seed);
    return graph::make_connected_er(c.n, 0.12, rng);
  }
  Rng rng(c.seed);
  return graph::make_random_with_diameter(c.n, c.d, rng);
}

core::QuantumConfig harness_config(std::uint64_t qseed) {
  core::QuantumConfig cfg;
  cfg.seed = qseed;
  cfg.delta = 1e-6;
  cfg.oracle = core::OracleMode::kDirect;
  return cfg;
}

// Runs every front-end on `g` against the classical references. Returns ""
// on full agreement, otherwise a description of the first mismatch.
// `checks` is incremented once per algorithm comparison performed.
std::string check_case(const graph::Graph& g, std::uint64_t qseed,
                       int& checks) {
  const std::uint32_t d_ref = graph::diameter(g);
  const std::uint32_t r_ref = graph::radius(g);
  const auto eccs = graph::all_eccentricities(g);

  // Internal consistency of the references themselves.
  std::uint32_t ecc_max = 0, ecc_min = g.n() == 0 ? 0 : eccs[0];
  for (auto e : eccs) {
    ecc_max = std::max(ecc_max, e);
    ecc_min = std::min(ecc_min, e);
  }
  if (ecc_max != d_ref || ecc_min != r_ref) {
    return "classical references disagree with all_eccentricities";
  }

  const auto cfg = harness_config(qseed);

  {
    auto rep = core::quantum_diameter_exact(g, cfg);
    ++checks;
    if (rep.subroutine_failed) return "exact: " + rep.failure_reason;
    if (rep.diameter != d_ref) {
      return "quantum_diameter_exact = " + std::to_string(rep.diameter) +
             ", classical = " + std::to_string(d_ref);
    }
  }
  {
    auto rep = core::quantum_diameter_simple(g, cfg);
    ++checks;
    if (rep.subroutine_failed) return "simple: " + rep.failure_reason;
    if (rep.diameter != d_ref) {
      return "quantum_diameter_simple = " + std::to_string(rep.diameter) +
             ", classical = " + std::to_string(d_ref);
    }
  }
  {
    auto rep = core::quantum_radius(g, cfg);
    ++checks;
    if (rep.subroutine_failed) return "radius: " + rep.failure_reason;
    if (rep.radius != r_ref) {
      return "quantum_radius = " + std::to_string(rep.radius) +
             ", classical = " + std::to_string(r_ref);
    }
    if (g.n() >= 2 && eccs[rep.center] != r_ref) {
      return "quantum_radius center has ecc " +
             std::to_string(eccs[rep.center]) + ", radius is " +
             std::to_string(r_ref);
    }
  }
  {
    auto rep = core::quantum_diameter_decide(g, d_ref, cfg);
    ++checks;
    if (rep.subroutine_failed) return "decide(D): " + rep.failure_reason;
    if (rep.diameter_exceeds) {
      return "decide(D = " + std::to_string(d_ref) + ") claimed D > D";
    }
  }
  if (d_ref >= 1) {
    auto rep = core::quantum_diameter_decide(g, d_ref - 1, cfg);
    ++checks;
    if (rep.subroutine_failed) return "decide(D-1): " + rep.failure_reason;
    if (!rep.diameter_exceeds) {
      return "decide(D-1 = " + std::to_string(d_ref - 1) +
             ") missed D > D-1";
    }
  }
  {
    // The sampling preparation may abort (documented resample condition);
    // retry with fresh quantum seeds before judging the estimate.
    core::QuantumApproxReport rep;
    for (std::uint64_t attempt = 0; attempt < 3; ++attempt) {
      rep = core::quantum_diameter_approx(g, harness_config(qseed + attempt));
      if (!rep.aborted) break;
    }
    ++checks;
    if (!rep.aborted) {
      if (rep.subroutine_failed) return "approx: " + rep.failure_reason;
      if (rep.estimate > d_ref || 3 * rep.estimate < 2 * d_ref) {
        return "approx estimate " + std::to_string(rep.estimate) +
               " outside [2D/3, D] for D = " + std::to_string(d_ref);
      }
    }
  }
  return "";
}

// Shrinks a failing case by lowering n (same family / d / seed) and
// reports the smallest n that still fails together with its mismatch.
void report_shrunk(const CaseId& failing, std::uint64_t qseed,
                   const std::string& original_error) {
  CaseId best = failing;
  std::string best_error = original_error;
  const std::uint32_t floor_n =
      failing.family == "diam" ? std::max(2u, failing.d + 1) : 2u;
  for (std::uint32_t n = failing.n; n-- > floor_n;) {
    CaseId smaller = failing;
    smaller.n = n;
    int ignored = 0;
    const auto g = build(smaller);
    if (!g.is_connected()) continue;
    const std::string err = check_case(g, qseed, ignored);
    if (!err.empty()) {
      best = smaller;
      best_error = err;
    }
  }
  ADD_FAILURE() << "differential mismatch; minimal failing case "
                << best.describe() << ": " << best_error;
}

std::vector<CaseId> case_list() {
  std::vector<CaseId> cases;
  for (std::uint32_t n : {12u, 20u, 28u, 36u}) {
    for (std::uint32_t d : {3u, 5u, 8u}) {
      for (std::uint64_t seed : {1ULL, 2ULL}) {
        cases.push_back({"diam", n, d, seed});
      }
    }
  }
  for (std::uint32_t n : {2u, 3u, 5u, 9u, 17u, 33u}) {
    cases.push_back({"path", n, n - 1, 0});
  }
  for (std::uint32_t n : {3u, 5u, 10u, 25u}) {
    cases.push_back({"star", n, 2, 0});
  }
  for (std::uint32_t n : {12u, 20u, 28u}) {
    for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
      cases.push_back({"chorded-tree", n, 0, seed});
    }
  }
  return cases;
}

TEST(Differential, AllFrontEndsAgreeWithClassical) {
  int checks = 0;
  for (const auto& c : case_list()) {
    const auto g = build(c);
    ASSERT_TRUE(g.is_connected()) << c.describe();
    const std::uint64_t qseed = 7 + c.n + 31 * c.seed;
    const std::string err = check_case(g, qseed, checks);
    if (!err.empty()) report_shrunk(c, qseed, err);
  }
  // The acceptance bar for this harness: 200+ differential comparisons.
  EXPECT_GE(checks, 200);
}

// The branch fan-out must be invisible in results AND cost accounting:
// branch_threads is a wall-clock lever only.
TEST(Differential, BranchThreadsDoNotChangeReports) {
  std::vector<CaseId> subset = {
      {"diam", 24, 5, 1}, {"diam", 32, 8, 2}, {"chorded-tree", 20, 0, 1},
      {"path", 17, 16, 0},
  };
  for (const auto& c : subset) {
    const auto g = build(c);
    auto cfg = harness_config(11 + c.n);
    cfg.branch_threads = 1;
    const auto serial = core::quantum_diameter_exact(g, cfg);
    cfg.branch_threads = 2;
    const auto threaded = core::quantum_diameter_exact(g, cfg);
    EXPECT_EQ(serial.diameter, threaded.diameter) << c.describe();
    EXPECT_EQ(serial.total_rounds, threaded.total_rounds) << c.describe();
    EXPECT_EQ(serial.costs.grover_iterations, threaded.costs.grover_iterations)
        << c.describe();
    EXPECT_EQ(serial.costs.setup_invocations, threaded.costs.setup_invocations)
        << c.describe();
    EXPECT_EQ(serial.distinct_branch_evaluations,
              threaded.distinct_branch_evaluations)
        << c.describe();
    EXPECT_EQ(serial.reference_bfs_runs, threaded.reference_bfs_runs)
        << c.describe();

    cfg.branch_threads = 1;
    const auto radius_serial = core::quantum_radius(g, cfg);
    cfg.branch_threads = 2;
    const auto radius_threaded = core::quantum_radius(g, cfg);
    EXPECT_EQ(radius_serial.radius, radius_threaded.radius) << c.describe();
    EXPECT_EQ(radius_serial.center, radius_threaded.center) << c.describe();
    EXPECT_EQ(radius_serial.total_rounds, radius_threaded.total_rounds)
        << c.describe();
  }
}

// ---------------------------------------------------------------------------
// Engine parity: the multi-process shard backend vs the in-process engine.
//
// The same differential discipline as above, applied to execution engines
// instead of front-ends: for every graph family the sharded backend must
// reproduce the single-process run bit for bit — RunStats, algorithm
// outcomes AND the full delivery-event stream — at every worker count.
// Mismatches shrink to the smallest failing n like the quantum dimension.
// ---------------------------------------------------------------------------

std::string diff_stats(const congest::RunStats& a, const congest::RunStats& b,
                       const char* what) {
  std::ostringstream os;
  os << what << ": ";
  if (a.rounds != b.rounds) {
    os << "rounds " << a.rounds << " vs " << b.rounds;
  } else if (a.messages != b.messages) {
    os << "messages " << a.messages << " vs " << b.messages;
  } else if (a.bits != b.bits) {
    os << "bits " << a.bits << " vs " << b.bits;
  } else if (a.max_edge_bits != b.max_edge_bits) {
    os << "max_edge_bits " << a.max_edge_bits << " vs " << b.max_edge_bits;
  } else if (a.violations != b.violations) {
    os << "violations " << a.violations << " vs " << b.violations;
  } else if (a.quiesced != b.quiesced) {
    os << "quiesced " << a.quiesced << " vs " << b.quiesced;
  } else if (a.max_node_memory_bits != b.max_node_memory_bits) {
    os << "max_node_memory_bits " << a.max_node_memory_bits << " vs "
       << b.max_node_memory_bits;
  } else if (a.messages_dropped != b.messages_dropped ||
             a.messages_corrupted != b.messages_corrupted ||
             a.crashed_node_rounds != b.crashed_node_rounds) {
    os << "fault counters differ";
  } else {
    return "";
  }
  return os.str();
}

// Runs leader election and eccentricity (BFS + convergecast) on one graph,
// single-process vs sharded at worker count `w`, with delivery tracing
// armed on both. Returns "" on bit-identical agreement.
std::string check_shard_case(const graph::Graph& g, std::uint32_t w,
                             int& checks, bool greedy = false) {
  using congest::shard::ShardConfig;
  using congest::shard::ShardedNetwork;
  w = std::min(w, g.n());  // a shard needs at least one node

  congest::TraceRecorder seq_trace;
  congest::TraceRecorder shard_trace;

  congest::NetworkConfig seq_cfg = seq_trace.arm({});
  congest::Network seq_net(g, seq_cfg);
  ShardConfig scfg;
  scfg.shards = w;
  scfg.net = shard_trace.arm({});
  if (greedy) {
    scfg.partitioner =
        std::make_shared<congest::shard::GreedyGrowPartitioner>();
  }
  ShardedNetwork shard_net(g, scfg);

  {
    const auto a = algos::elect_leader_on(seq_net);
    const auto b = algos::elect_leader_on(shard_net);
    ++checks;
    if (a.leader != b.leader) return "leader differs";
    if (auto err = diff_stats(a.stats, b.stats, "elect"); !err.empty()) {
      return err;
    }
  }
  {
    const graph::NodeId root = g.n() / 3;
    const auto a = algos::compute_eccentricity_on(seq_net, root);
    const auto b = algos::compute_eccentricity_on(shard_net, root);
    ++checks;
    if (a.ecc != b.ecc) return "ecc differs";
    if (a.status != b.status) return "ecc status differs";
    if (a.tree.parent != b.tree.parent) return "bfs parents differ";
    if (a.tree.depth != b.tree.depth) return "bfs depths differ";
    if (a.tree.children != b.tree.children) return "bfs children differ";
    if (a.tree.height != b.tree.height) return "bfs height differs";
    if (auto err = diff_stats(a.stats, b.stats, "ecc"); !err.empty()) {
      return err;
    }
  }
  ++checks;
  if (seq_trace.events().size() != shard_trace.events().size()) {
    return "event stream length differs: " +
           std::to_string(seq_trace.events().size()) + " vs " +
           std::to_string(shard_trace.events().size());
  }
  for (std::size_t i = 0; i < seq_trace.events().size(); ++i) {
    if (!(seq_trace.events()[i] == shard_trace.events()[i])) {
      const auto& e = seq_trace.events()[i];
      const auto& f = shard_trace.events()[i];
      std::ostringstream os;
      os << "event " << i << " differs: seq (r" << e.round << " " << e.from
         << "->" << e.to << " " << e.bits << "b) vs shard (r" << f.round
         << " " << f.from << "->" << f.to << " " << f.bits << "b)";
      return os.str();
    }
  }
  return "";
}

void report_shrunk_shard(const CaseId& failing, std::uint32_t w,
                         const std::string& original_error) {
  CaseId best = failing;
  std::string best_error = original_error;
  const std::uint32_t floor_n =
      failing.family == "diam" ? std::max(2u, failing.d + 1) : 2u;
  for (std::uint32_t n = failing.n; n-- > floor_n;) {
    CaseId smaller = failing;
    smaller.n = n;
    const auto g = build(smaller);
    if (!g.is_connected()) continue;
    int ignored = 0;
    const std::string err = check_shard_case(g, w, ignored);
    if (!err.empty()) {
      best = smaller;
      best_error = err;
    }
  }
  ADD_FAILURE() << "shard-parity mismatch at W=" << w
                << "; minimal failing case " << best.describe() << ": "
                << best_error;
}

TEST(Differential, ShardedEngineBitIdenticalForEveryWorkerCount) {
  int checks = 0;
  // One representative n per family keeps the fork count sane; the shard
  // unit tests cover more graphs, this dimension covers more W.
  const std::vector<CaseId> cases = {
      {"diam", 28, 5, 1},        {"diam", 36, 8, 2}, {"path", 17, 16, 0},
      {"star", 25, 2, 0},        {"chorded-tree", 20, 0, 1},
      {"chorded-tree", 28, 0, 3},
  };
  for (const auto& c : cases) {
    const auto g = build(c);
    ASSERT_TRUE(g.is_connected()) << c.describe();
    for (const std::uint32_t w : {1u, 2u, 3u, 8u}) {
      const std::string err = check_shard_case(g, w, checks);
      if (!err.empty()) report_shrunk_shard(c, w, err);
    }
  }
  EXPECT_GE(checks, 72);  // 6 cases x 4 worker counts x 3 comparisons
}

TEST(Differential, ShardedEngineBitIdenticalUnderGreedyPartitioner) {
  // The greedy partitioner produces non-contiguous, graph-dependent owner
  // maps; the parity contract (reports, stats, canonical event stream)
  // must hold for those exactly as for contiguous ranges.
  int checks = 0;
  const std::vector<CaseId> cases = {
      {"diam", 30, 6, 4},
      {"chorded-tree", 26, 0, 2},
  };
  for (const auto& c : cases) {
    const auto g = build(c);
    ASSERT_TRUE(g.is_connected()) << c.describe();
    for (const std::uint32_t w : {1u, 2u, 3u, 8u}) {
      const std::string err =
          check_shard_case(g, w, checks, /*greedy=*/true);
      EXPECT_TRUE(err.empty())
          << "greedy shard-parity mismatch at W=" << w << " on "
          << c.describe() << ": " << err;
    }
  }
  EXPECT_GE(checks, 24);  // 2 cases x 4 worker counts x 3 comparisons
}

}  // namespace
}  // namespace qc
