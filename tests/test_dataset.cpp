// Reference-output tests over the checked-in datasets under data/: every
// value below was computed once from the committed files and is pinned, so
// any regression in the importer, the .qcg codec, the CSR refactor, or the
// BFS kernels — or any silent modification of the data files themselves —
// shows up as an exact-value mismatch. QC_DATA_DIR is injected by CMake and
// points at the source-tree data/ directory.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/import.hpp"
#include "graph/io.hpp"
#include "graph/qcg.hpp"
#include "util/error.hpp"

#ifndef QC_DATA_DIR
#error "QC_DATA_DIR must point at the repository's data/ directory"
#endif

namespace qc::graph {
namespace {

std::string data_path(const char* file) {
  return std::string(QC_DATA_DIR) + "/" + file;
}

// One BFS worth of pinned topology evidence per dataset: eccentricity of
// vertex 0, the sum of all distances from it, and the double-sweep lower
// bound (BFS from the farthest vertex found). Cheap enough for sanitizer
// jobs, sensitive enough that any adjacency change flips at least one.
struct DatasetCase {
  const char* file;
  const char* format;  // what load_graph_file must auto-detect
  std::uint32_t n;
  std::uint32_t m;
  std::uint32_t ecc0;
  std::uint64_t dist_sum0;
  std::uint32_t dsweep_lb;
};

class DatasetReference : public ::testing::TestWithParam<DatasetCase> {};

TEST_P(DatasetReference, MatchesPinnedValues) {
  const auto& c = GetParam();
  std::string format;
  const auto g = load_graph_file(data_path(c.file), &format);
  EXPECT_EQ(format, c.format);
  EXPECT_EQ(g.n(), c.n);
  EXPECT_EQ(g.m(), c.m);
  EXPECT_TRUE(g.is_connected());

  const auto b = bfs(g, 0);
  EXPECT_EQ(b.ecc, c.ecc0);
  std::uint64_t sum = 0;
  for (const auto d : b.dist) sum += d;
  EXPECT_EQ(sum, c.dist_sum0);

  NodeId far = 0;
  for (NodeId v = 0; v < g.n(); ++v)
    if (b.dist[v] > b.dist[far]) far = v;
  EXPECT_EQ(bfs(g, far).ecc, c.dsweep_lb);
}

INSTANTIATE_TEST_SUITE_P(
    CheckedInFiles, DatasetReference,
    ::testing::Values(
        DatasetCase{"synth-p2p-10k.txt", "edge-list", 10876, 32575, 5, 34899,
                    6},
        DatasetCase{"synth-p2p-10k.qcg", "qcg", 10876, 32575, 5, 34899, 6},
        DatasetCase{"synth-p2p-100k.qcg", "qcg", 100000, 299927, 5, 357378,
                    7}));

TEST(Dataset, TextAndQcgCopiesAreIdentical) {
  const auto txt = read_edge_list_file(data_path("synth-p2p-10k.txt"));
  const auto qcg = read_qcg_file(data_path("synth-p2p-10k.qcg"));
  ASSERT_EQ(txt.n(), qcg.n());
  ASSERT_EQ(txt.m(), qcg.m());
  const auto to = txt.csr_offsets(), qo = qcg.csr_offsets();
  const auto tn = txt.csr_neighbors(), qn = qcg.csr_neighbors();
  EXPECT_TRUE(std::equal(to.begin(), to.end(), qo.begin()));
  EXPECT_TRUE(std::equal(tn.begin(), tn.end(), qn.begin()));
}

TEST(Dataset, SmallSnapImportsWithExactStats) {
  const auto imp = import_edge_list_file(data_path("small-snap.txt"));
  const auto& g = imp.graph;
  EXPECT_EQ(g.n(), 6u);
  EXPECT_EQ(g.m(), 7u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(diameter(g), 3u);

  EXPECT_EQ(imp.stats.self_loops_dropped, 1u);
  EXPECT_EQ(imp.stats.duplicates_coalesced, 1u);
  EXPECT_TRUE(imp.stats.ids_compacted);
  EXPECT_EQ(imp.stats.min_raw_id, 10u);
  EXPECT_EQ(imp.stats.max_raw_id, 100u);
  EXPECT_EQ(imp.stats.comment_lines, 7u);

  const std::vector<std::uint64_t> want_ids{10, 20, 30, 40, 55, 100};
  EXPECT_EQ(imp.raw_ids, want_ids);
  // Compaction is by sorted raw id, so raw 10 -> 0, raw 100 -> 5, and the
  // raw edge "100 10" must appear as compacted {0, 5}.
  EXPECT_TRUE(g.has_edge(0, 5));
  // The raw self-loop "20 20" must NOT survive as any edge at node 1.
  EXPECT_FALSE(g.has_edge(1, 1));
}

TEST(Dataset, SmallSnapAutoDetectsAsSnap) {
  std::string format;
  const auto g = load_graph_file(data_path("small-snap.txt"), &format);
  EXPECT_EQ(format, "snap");
  EXPECT_EQ(g.n(), 6u);
  EXPECT_EQ(g.m(), 7u);
}

TEST(Dataset, LargeQcgHeaderAgreesWithGraph) {
  const auto path = data_path("synth-p2p-100k.qcg");
  ASSERT_TRUE(is_qcg_file(path));
  const auto info = qcg_info_file(path);
  EXPECT_EQ(info.version, kQcgVersion);
  EXPECT_EQ(info.encoding, QcgEncoding::kDeltaVarint);
  EXPECT_EQ(info.n, 100000u);
  EXPECT_EQ(info.m(), 299927u);
  // The compact encoding must stay well under the 8 bytes/edge of raw CSR.
  EXPECT_LT(info.bytes_per_edge(), 6.0);
}

}  // namespace
}  // namespace qc::graph
