// The bit-parallel multi-source BFS kernel layer (graph/bfs_kernels.hpp)
// and its integration into EccEngine:
//
//  - parity of the multi-source kernel (push-only AND direction-
//    optimizing) against the flat single-source kernel and against a
//    bfs()-derived reference, over connected families, two-component
//    unions, isolated vertices, and fully random (possibly disconnected)
//    graphs — the differential harness of the disconnected-graph bugfix;
//  - EccEngine bit-identity across kernel choices and thread counts,
//    bfs_runs() accounting, and SegmentMax bit-identity on the
//    bit-parallel table;
//  - the lifetime fixes: an engine outliving its source Graph object
//    (view-backed storage included) and a SegmentMax outliving its
//    engine.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/bfs_kernels.hpp"
#include "graph/ecc_engine.hpp"
#include "graph/generators.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace qc::graph {
namespace {

// Ground truth straight from bfs(): ecc(v) is the max distance when v
// reaches everything, kUnreachable otherwise.
std::vector<std::uint32_t> reference_eccentricities(const Graph& g) {
  std::vector<std::uint32_t> out(g.n());
  for (NodeId v = 0; v < g.n(); ++v) {
    const BfsResult r = bfs(g, v);
    std::uint32_t ecc = 0;
    bool connected = true;
    for (const std::uint32_t dv : r.dist) {
      if (dv == kUnreachable) {
        connected = false;
        break;
      }
      ecc = std::max(ecc, dv);
    }
    out[v] = connected ? ecc : kUnreachable;
  }
  return out;
}

// G1 ⊎ G2 with G2's ids shifted — the canonical two-component graph.
Graph disjoint_union(const Graph& a, const Graph& b) {
  std::vector<Edge> edges = a.edges();
  for (const auto& [u, v] : b.edges()) {
    edges.emplace_back(u + a.n(), v + a.n());
  }
  return Graph::from_edges(a.n() + b.n(), std::move(edges));
}

// `extra` isolated vertices appended after g's.
Graph with_isolated(const Graph& g, std::uint32_t extra) {
  return Graph::from_edges(g.n() + extra, g.edges());
}

// Runs the multi-source kernel over all of g's vertices in `batch`-sized
// slices and returns the assembled eccentricity table.
std::vector<std::uint32_t> sweep_multi(const Graph& g, std::uint32_t batch,
                                       MultiBfsDirection dir) {
  std::vector<std::uint32_t> out(g.n());
  std::vector<NodeId> ids(g.n());
  for (NodeId v = 0; v < g.n(); ++v) ids[v] = v;
  MultiBfsScratch scratch;
  for (std::uint32_t first = 0; first < g.n(); first += batch) {
    const std::uint32_t k = std::min(batch, g.n() - first);
    multi_source_eccentricities(
        g, std::span<const NodeId>(ids.data() + first, k),
        out.data() + first, scratch, dir);
  }
  return out;
}

std::vector<Graph> connected_families() {
  std::vector<Graph> gs;
  gs.push_back(make_path(1));
  gs.push_back(make_path(2));
  gs.push_back(make_path(17));
  gs.push_back(make_path(65));  // > one word of sources, high diameter
  gs.push_back(make_star(9));
  gs.push_back(make_cycle(12));
  gs.push_back(make_grid(7, 9));
  gs.push_back(make_balanced_tree(40, 3));
  Rng rng(42);
  gs.push_back(make_connected_er(150, 0.04, rng));
  gs.push_back(make_random_with_diameter(130, 9, rng));
  gs.push_back(make_preferential_attachment(200, 3, rng));
  return gs;
}

std::vector<Graph> disconnected_families() {
  std::vector<Graph> gs;
  Rng rng(7);
  gs.push_back(disjoint_union(make_path(5), make_path(3)));
  gs.push_back(disjoint_union(make_star(8), make_cycle(5)));
  gs.push_back(disjoint_union(make_random_with_diameter(70, 6, rng),
                              make_grid(4, 4)));
  gs.push_back(with_isolated(make_path(6), 1));
  gs.push_back(with_isolated(make_preferential_attachment(90, 2, rng), 5));
  gs.push_back(Graph::from_edges(4, std::vector<Edge>{}));  // all isolated
  gs.push_back(disjoint_union(with_isolated(make_cycle(65), 2),
                              make_path(66)));  // spans several words
  return gs;
}

TEST(MultiSourceBfs, ParityOnConnectedFamilies) {
  for (const Graph& g : connected_families()) {
    const auto ref = reference_eccentricities(g);
    for (const auto dir :
         {MultiBfsDirection::kPushOnly, MultiBfsDirection::kOptimized}) {
      EXPECT_EQ(sweep_multi(g, 64, dir), ref) << g.describe();
    }
    // Flat kernel agrees with the same reference (connected: finite).
    BfsScratch scratch;
    for (NodeId v = 0; v < g.n(); ++v) {
      EXPECT_EQ(flat_bfs_distances(g, v, scratch), ref[v]);
      EXPECT_EQ(scratch.reached, g.n());
      EXPECT_EQ(scratch.finite_ecc, ref[v]);
    }
  }
}

TEST(MultiSourceBfs, ParityOnDisconnectedFamilies) {
  for (const Graph& g : disconnected_families()) {
    const auto ref = reference_eccentricities(g);
    // Every vertex of a multi-component graph misses something.
    for (const std::uint32_t e : ref) EXPECT_EQ(e, kUnreachable);
    for (const auto dir :
         {MultiBfsDirection::kPushOnly, MultiBfsDirection::kOptimized}) {
      EXPECT_EQ(sweep_multi(g, 64, dir), ref) << g.describe();
    }
    BfsScratch scratch;
    for (NodeId v = 0; v < g.n(); ++v) {
      EXPECT_EQ(flat_bfs_distances(g, v, scratch), kUnreachable);
      EXPECT_LT(scratch.reached, g.n());
    }
  }
}

TEST(MultiSourceBfs, RandomizedDifferentialVsBfsReference) {
  Rng rng(99);
  for (int trial = 0; trial < 40; ++trial) {
    const auto n =
        static_cast<std::uint32_t>(rng.next_in(1, trial < 20 ? 24 : 120));
    const auto m = static_cast<std::uint32_t>(rng.next_in(0, 2 * n));
    std::vector<Edge> edges;
    for (std::uint32_t i = 0; i < m; ++i) {
      const auto u = static_cast<NodeId>(rng.next_below(n));
      const auto v = static_cast<NodeId>(rng.next_below(n));
      if (u != v) edges.emplace_back(std::min(u, v), std::max(u, v));
    }
    const Graph g = Graph::from_edges(n, std::move(edges));
    const auto ref = reference_eccentricities(g);
    // Random batch slicing exercises partial words and batch boundaries.
    const auto batch = static_cast<std::uint32_t>(rng.next_in(1, 64));
    for (const auto dir :
         {MultiBfsDirection::kPushOnly, MultiBfsDirection::kOptimized}) {
      ASSERT_EQ(sweep_multi(g, batch, dir), ref)
          << "trial " << trial << " n=" << n << " batch=" << batch;
    }
  }
}

TEST(MultiSourceBfs, DuplicateAndUnorderedSources) {
  Rng rng(3);
  const Graph g = make_random_with_diameter(80, 7, rng);
  const auto ref = reference_eccentricities(g);
  const std::vector<NodeId> srcs = {5, 5, 0, 79, 13, 5, 79};
  std::vector<std::uint32_t> out(srcs.size());
  MultiBfsScratch scratch;
  multi_source_eccentricities(g, srcs, out.data(), scratch);
  for (std::size_t i = 0; i < srcs.size(); ++i) {
    EXPECT_EQ(out[i], ref[srcs[i]]);
  }
}

TEST(MultiSourceBfs, SingleSourceBatchMatchesFlat) {
  const Graph g = make_grid(5, 6);
  BfsScratch flat;
  MultiBfsScratch multi;
  for (NodeId v = 0; v < g.n(); ++v) {
    std::uint32_t out = 0;
    const NodeId src[1] = {v};
    multi_source_eccentricities(g, src, &out, multi);
    EXPECT_EQ(out, flat_bfs_distances(g, v, flat));
  }
}

TEST(MultiSourceBfs, DirectionStatsAccount) {
  // Low-diameter star: the optimized run must actually pull; the
  // push-only run must not. Level counts agree either way.
  const Graph g = make_star(200);
  std::vector<NodeId> srcs(64);
  for (NodeId i = 0; i < 64; ++i) srcs[i] = i;
  std::uint32_t out[64];
  MultiBfsScratch scratch;
  const auto opt = multi_source_eccentricities(
      g, srcs, out, scratch, MultiBfsDirection::kOptimized);
  EXPECT_GT(opt.pull_levels, 0u);
  EXPECT_EQ(opt.levels, opt.push_levels + opt.pull_levels);
  const auto push = multi_source_eccentricities(
      g, srcs, out, scratch, MultiBfsDirection::kPushOnly);
  EXPECT_EQ(push.pull_levels, 0u);
  EXPECT_EQ(push.levels, opt.levels);
}

TEST(MultiSourceBfs, RejectsBadBatches) {
  const Graph g = make_path(4);
  MultiBfsScratch scratch;
  std::uint32_t out[65];
  EXPECT_THROW(multi_source_eccentricities(g, {}, out, scratch), Error);
  std::vector<NodeId> too_many(65, 0);
  EXPECT_THROW(multi_source_eccentricities(g, too_many, out, scratch),
               Error);
  const NodeId oob[1] = {4};
  EXPECT_THROW(multi_source_eccentricities(g, oob, out, scratch), Error);
}

TEST(EccEngineKernels, BitIdenticalAcrossKernelsAndThreads) {
  Rng rng(11);
  std::vector<Graph> gs;
  gs.push_back(make_random_with_diameter(300, 12, rng));  // > cutoff
  gs.push_back(make_preferential_attachment(400, 3, rng));
  gs.push_back(disjoint_union(make_path(200), make_cycle(150)));
  for (const Graph& g : gs) {
    const EccEngine flat1(g, {1, EccKernel::kFlat});
    const EccEngine bp1(g, {1, EccKernel::kBitParallel});
    const EccEngine bp4(g, {4, EccKernel::kBitParallel});
    const EccEngine flat4(g, {4, EccKernel::kFlat});
    const auto& table = flat1.all();
    EXPECT_EQ(bp1.all(), table);
    EXPECT_EQ(bp4.all(), table);
    EXPECT_EQ(flat4.all(), table);
    // One BFS per vertex regardless of kernel, batching, or threads.
    EXPECT_EQ(flat1.bfs_runs(), g.n());
    EXPECT_EQ(bp1.bfs_runs(), g.n());
    EXPECT_EQ(bp4.bfs_runs(), g.n());
    EXPECT_EQ(table, reference_eccentricities(g));
  }
}

TEST(EccEngineKernels, DisconnectedEngineReportsUnreachable) {
  for (const Graph& g : disconnected_families()) {
    for (const auto kernel : {EccKernel::kFlat, EccKernel::kBitParallel}) {
      const EccEngine engine(g, {1, kernel});
      EXPECT_EQ(engine.diameter(), kUnreachable) << g.describe();
      EXPECT_EQ(engine.radius(), kUnreachable) << g.describe();
      for (NodeId v = 0; v < g.n(); ++v) {
        EXPECT_EQ(engine.eccentricity(v), kUnreachable);
      }
    }
  }
}

TEST(EccEngineKernels, ConnectedEngineStaysFinite) {
  for (const Graph& g : connected_families()) {
    const EccEngine engine(g);
    EXPECT_EQ(engine.all(), reference_eccentricities(g)) << g.describe();
    EXPECT_NE(engine.diameter(), kUnreachable);
  }
}

TEST(EccEngineKernels, SegmentMaxBitIdenticalOnKernelTables) {
  Rng rng(17);
  const Graph g = make_random_with_diameter(300, 14, rng);
  const BfsTree tree = bfs_tree(g, 0);
  const DfsNumbering num = dfs_numbering(tree);
  const EccEngine flat(g, {1, EccKernel::kFlat});
  const EccEngine bp(g, {2, EccKernel::kBitParallel});
  const auto seg_flat = flat.segment_max(num);
  const auto seg_bp = bp.segment_max(num);
  const std::uint32_t len = num.walk_length();
  for (NodeId u = 0; u < g.n(); u += 7) {
    for (const std::uint32_t steps : {0u, 3u, len / 2, len, 2 * len}) {
      EXPECT_EQ(seg_bp.max_ecc_in_segment(u, steps),
                seg_flat.max_ecc_in_segment(u, steps))
          << "u=" << u << " steps=" << steps;
    }
  }
}

TEST(EccEngineLifetime, EngineOutlivesSourceGraph) {
  // The engine copies the Graph (O(1), shared storage), so the caller's
  // object — including a view over external CSR arrays — can die first.
  std::unique_ptr<EccEngine> engine;
  std::uint32_t expected = 0;
  {
    const Graph g = make_grid(6, 7);
    expected = diameter(g);
    auto offsets = std::make_shared<std::vector<std::uint32_t>>(
        g.csr_offsets().begin(), g.csr_offsets().end());
    auto neighbors = std::make_shared<std::vector<NodeId>>(
        g.csr_neighbors().begin(), g.csr_neighbors().end());
    struct Keep {
      std::shared_ptr<std::vector<std::uint32_t>> o;
      std::shared_ptr<std::vector<NodeId>> n;
    };
    auto keep = std::make_shared<Keep>(Keep{offsets, neighbors});
    const Graph view = Graph::from_csr_view(
        g.n(), keep->o->data(), keep->n->data(), keep->n->size(),
        std::shared_ptr<const void>(keep, keep.get()));
    ASSERT_TRUE(view.is_view());
    engine = std::make_unique<EccEngine>(view, 1);
    // `view`, `keep` and `g` all go out of scope before the first query.
  }
  EXPECT_EQ(engine->diameter(), expected);
  EXPECT_EQ(engine->graph().n(), 42u);
}

TEST(EccEngineLifetime, SegmentMaxOutlivesEngine) {
  Rng rng(29);
  const Graph g = make_random_with_diameter(90, 8, rng);
  const BfsTree tree = bfs_tree(g, 0);
  const DfsNumbering num = dfs_numbering(tree);
  EccEngine::SegmentMax seg;
  {
    const EccEngine engine(g, 1);
    seg = engine.segment_max(num);
  }  // engine (and its table's unique handle) destroyed here
  for (NodeId u = 0; u < g.n(); u += 5) {
    EXPECT_EQ(seg.max_ecc_in_segment(u, 2 * tree.height),
              max_ecc_in_segment(g, num, u, 2 * tree.height));
  }
}

}  // namespace
}  // namespace qc::graph
