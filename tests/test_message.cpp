// The small-buffer-optimized congest::Message: wire-format semantics
// (push/field/set_field/truncated/equality) must be exactly those of the
// original vector-backed representation, with no heap traffic until a
// message exceeds the inline field capacity. The allocation probe replaces
// this binary's global allocator, so the no-spill-no-allocation invariant
// the delivery hot path relies on is asserted directly.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "congest/message.hpp"
#include "util/alloc_probe.hpp"
#include "util/error.hpp"

QC_INSTALL_ALLOC_PROBE();

namespace qc::congest {
namespace {

std::uint64_t allocs() { return qc::alloc_probe_count().load(); }

TEST(MessageSbo, InlineCapacityMessagesNeverAllocate) {
  const std::uint64_t before = allocs();
  Message m;
  for (std::size_t i = 0; i < Message::kInlineFields; ++i) {
    m.push(i, 8);
  }
  Message copy = m;
  Message moved = std::move(copy);
  const std::uint64_t after = allocs();
  EXPECT_EQ(moved, m);
  EXPECT_EQ(after, before);
}

TEST(MessageSbo, SpillBeyondInlineCapacity) {
  Message m;
  const std::size_t fields = 3 * Message::kInlineFields + 2;
  std::uint32_t expected_bits = 0;
  for (std::size_t i = 0; i < fields; ++i) {
    const std::uint32_t w = 1 + static_cast<std::uint32_t>(i % 3);
    m.push(i % 2, w);
    expected_bits += w;
  }
  ASSERT_EQ(m.num_fields(), fields);
  EXPECT_EQ(m.size_bits(), expected_bits);
  for (std::size_t i = 0; i < fields; ++i) {
    EXPECT_EQ(m.field(i), i % 2) << i;
    EXPECT_EQ(m.field_bits(i), 1 + static_cast<std::uint32_t>(i % 3)) << i;
  }
  const std::uint64_t before = allocs();
  Message m2;
  for (std::size_t i = 0; i <= Message::kInlineFields; ++i) m2.push(0, 1);
  EXPECT_GT(allocs(), before) << "field " << Message::kInlineFields + 1
                              << " must spill to the heap";
}

TEST(MessageSbo, CopyAndMovePreserveSpilledFields) {
  Message m;
  for (std::size_t i = 0; i < Message::kInlineFields + 4; ++i) {
    m.push(i, 16);
  }
  Message copy = m;
  EXPECT_EQ(copy, m);
  copy.set_field(Message::kInlineFields + 2, 999);  // spilled index
  EXPECT_EQ(copy.field(Message::kInlineFields + 2), 999u);
  EXPECT_EQ(m.field(Message::kInlineFields + 2), Message::kInlineFields + 2)
      << "copies must not share spill storage";

  Message moved = std::move(m);
  EXPECT_EQ(moved.num_fields(), Message::kInlineFields + 4);
  EXPECT_EQ(moved.field(Message::kInlineFields + 3),
            Message::kInlineFields + 3);
  // Moved-from messages reset to empty and are freely reusable — reused
  // outbox slots depend on this.
  EXPECT_EQ(m.num_fields(), 0u);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(m.size_bits(), 0u);
  EXPECT_EQ(m, Message{});
  m.push(7, 3);
  EXPECT_EQ(m.field(0), 7u);
}

TEST(MessageSbo, EqualityIsFieldWiseNotRepresentational) {
  Message a;
  Message b;
  a.push(5, 4).push(9, 8);
  b.push(5, 4).push(9, 8);
  EXPECT_EQ(a, b);
  Message widened;
  widened.push(5, 5).push(9, 8);  // same values, different declared width
  EXPECT_FALSE(a == widened);
  Message shorter;
  shorter.push(5, 4);
  EXPECT_FALSE(a == shorter);
}

TEST(MessageSbo, CachedSizeBitsMatchesFieldSum) {
  Message m;
  m.push(1, 1).push(~0ULL, 64).push(100, 7);
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i < m.num_fields(); ++i) sum += m.field_bits(i);
  EXPECT_EQ(m.size_bits(), sum);
  m.set_field(1, 42);  // set_field keeps layout, so the cache stays valid
  EXPECT_EQ(m.size_bits(), sum);
  const Message t = m.truncated(30);
  std::uint32_t tsum = 0;
  for (std::size_t i = 0; i < t.num_fields(); ++i) tsum += t.field_bits(i);
  EXPECT_EQ(t.size_bits(), tsum);
  EXPECT_EQ(t.size_bits(), 30u);
}

TEST(MessageSbo, SetFieldValidatesWidthOnSpilledFields) {
  Message m;
  for (std::size_t i = 0; i < Message::kInlineFields + 1; ++i) m.push(0, 4);
  EXPECT_THROW(m.set_field(Message::kInlineFields, 16), InvalidArgumentError);
  m.set_field(Message::kInlineFields, 15);
  EXPECT_EQ(m.field(Message::kInlineFields), 15u);
}

TEST(MessageTruncate, FieldExactlyFillingBudgetIsKeptWhole) {
  Message m;
  m.push(0xAB, 8).push(0xCD, 8).push(0xEF, 8);
  const Message t = m.truncated(16);
  ASSERT_EQ(t.num_fields(), 2u);
  EXPECT_EQ(t.field(0), 0xABu);
  EXPECT_EQ(t.field(1), 0xCDu);
  EXPECT_EQ(t.field_bits(1), 8u);
  EXPECT_EQ(t.size_bits(), 16u);
  // Budget equal to the whole message: bit-identical, nothing clipped.
  EXPECT_EQ(m.truncated(24), m);
  EXPECT_EQ(m.truncated(1000), m);
}

TEST(MessageTruncate, SingleSixtyFourBitFieldNarrows) {
  Message m;
  m.push(~0ULL, 64);
  const Message t = m.truncated(10);
  ASSERT_EQ(t.num_fields(), 1u);
  EXPECT_EQ(t.field_bits(0), 10u);
  EXPECT_EQ(t.field(0), (1ULL << 10) - 1);
  const Message t63 = m.truncated(63);
  ASSERT_EQ(t63.num_fields(), 1u);
  EXPECT_EQ(t63.field_bits(0), 63u);
  EXPECT_EQ(t63.field(0), (1ULL << 63) - 1);
  EXPECT_EQ(m.truncated(64), m);
}

TEST(MessageTruncate, ZeroBudgetYieldsEmptyMessage) {
  Message m;
  m.push(3, 2).push(1, 1);
  const Message t = m.truncated(0);
  EXPECT_EQ(t.num_fields(), 0u);
  EXPECT_EQ(t.size_bits(), 0u);
  EXPECT_EQ(t, Message{});
  EXPECT_EQ(Message{}.truncated(0), Message{});
}

TEST(MessageTruncate, ClipsAcrossTheInlineBoundary) {
  Message m;
  const std::size_t fields = Message::kInlineFields + 3;
  for (std::size_t i = 0; i < fields; ++i) m.push(0x1F, 5);
  // Keep one field past the inline capacity whole, then narrow the next.
  const auto keep = static_cast<std::uint32_t>(Message::kInlineFields + 1);
  const Message t = m.truncated(5 * keep + 2);
  ASSERT_EQ(t.num_fields(), keep + 1);
  EXPECT_EQ(t.field_bits(keep), 2u);
  EXPECT_EQ(t.field(keep), 0x1Fu & 0b11u);
  EXPECT_EQ(t.size_bits(), 5 * keep + 2);
}

TEST(MessageClear, RemovesFieldsAndKeepsSpillCapacity) {
  Message m;
  const std::size_t fields = Message::kInlineFields + 4;
  for (std::size_t i = 0; i < fields; ++i) m.push(i, 9);
  ASSERT_EQ(m.num_fields(), fields);

  m.clear();
  EXPECT_EQ(m.num_fields(), 0u);
  EXPECT_EQ(m.size_bits(), 0u);
  EXPECT_EQ(m, Message{});

  // Refilling up to the previous spill depth reuses the retained block:
  // the shard decode loop leans on this to stay allocation-free once a
  // reused frame's messages are warmed.
  const std::uint64_t before = allocs();
  for (std::size_t i = 0; i < fields; ++i) m.push(fields - i, 7);
  const std::uint64_t after = allocs();
  EXPECT_EQ(after, before);
  ASSERT_EQ(m.num_fields(), fields);
  EXPECT_EQ(m.field(0), fields);
  EXPECT_EQ(m.field_bits(fields - 1), 7u);

  // clear() is not move-from: a cleared message is immediately reusable.
  m.clear();
  EXPECT_EQ(m.push(1, 1).num_fields(), 1u);
}

}  // namespace
}  // namespace qc::congest
