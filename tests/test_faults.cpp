// The deterministic fault-injection layer and the run-lifecycle fixes that
// shipped with it: true per-phase RunStats deltas, RNG reseeding on
// init_programs, adjacency sortedness validation, kTruncate clipping, and
// the graceful-degradation contract of the algorithm layer.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "algos/bfs_tree.hpp"
#include "algos/girth.hpp"
#include "congest/fault.hpp"
#include "congest/network.hpp"
#include "congest/shard/sharded_network.hpp"
#include "congest/trace.hpp"
#include "core/optimizer.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace qc {
namespace {

using congest::CrashWindow;
using congest::Message;
using congest::Network;
using congest::NetworkConfig;
using congest::NodeContext;
using graph::Graph;
using graph::NodeId;

Graph random_graph(std::uint32_t n, std::uint32_t d, std::uint64_t seed) {
  Rng rng(seed);
  return graph::make_random_with_diameter(n, d, rng);
}

/// Broadcasts one `width(round)`-bit message per round through round
/// `last_send`, then goes quiet; never reacts to its inbox, so the send
/// schedule (and hence the fault-free delivery count) is input-independent.
class ChatterProgram : public congest::NodeProgram {
 public:
  explicit ChatterProgram(std::uint32_t last_send, std::uint32_t bits = 8)
      : last_send_(last_send), bits_(bits) {}

  void on_start(NodeContext& ctx) override {
    ctx.broadcast(Message().push(1, bits_));
  }

  void on_round(NodeContext& ctx) override {
    if (ctx.round() <= last_send_) {
      ctx.broadcast(Message().push(1, bits_));
    }
    ctx.vote_halt();
  }

 private:
  std::uint32_t last_send_;
  std::uint32_t bits_;
};

// ---------------------------------------------------------------------------
// Satellite regression: run_rounds / run_until_quiescent report true
// per-phase deltas, not lifetime state.
// ---------------------------------------------------------------------------

// Sends wide (16-bit) messages through round 2 and narrow (4-bit) ones
// afterwards; memory_bits shrinks at the same boundary.
class ShrinkingProgram : public congest::NodeProgram {
 public:
  void on_start(NodeContext& ctx) override {
    ctx.broadcast(Message().push(1, 16));
  }

  void on_round(NodeContext& ctx) override {
    last_round_ = ctx.round();
    if (ctx.round() <= 5) {
      const std::uint32_t bits = ctx.round() <= 2 ? 16 : 4;
      ctx.broadcast(Message().push(1, bits));
    } else {
      ctx.vote_halt();
    }
  }

  std::uint64_t memory_bits() const override {
    return last_round_ <= 3 ? 1000 : 10;
  }

 private:
  std::uint32_t last_round_ = 0;
};

TEST(PerPhaseStats, MaximaAreNotLifetimeHighWaterMarks) {
  auto g = graph::make_path(4);
  Network net(g);
  net.init_programs(
      [](NodeId) { return std::make_unique<ShrinkingProgram>(); });

  // Phase 1 (rounds 1-3): every delivery is 16 bits and memory is high.
  auto phase1 = net.run_rounds(3);
  EXPECT_EQ(phase1.rounds, 3u);
  EXPECT_EQ(phase1.max_edge_bits, 16u);
  EXPECT_EQ(phase1.max_node_memory_bits, 1000u);

  // Phase 2 (rounds 4-6): only 4-bit messages (queued in rounds 3-5) and
  // shrunk memory. The old delta computation copied the lifetime maxima
  // (16 / 1000) into the second phase.
  auto phase2 = net.run_rounds(3);
  EXPECT_EQ(phase2.rounds, 3u);
  EXPECT_EQ(phase2.max_edge_bits, 4u);
  EXPECT_EQ(phase2.max_node_memory_bits, 10u);

  // The lifetime aggregate still carries the high-water marks.
  EXPECT_EQ(net.stats().max_edge_bits, 16u);
  EXPECT_EQ(net.stats().max_node_memory_bits, 1000u);
  EXPECT_EQ(net.stats().rounds, 6u);
}

TEST(PerPhaseStats, RunRoundsReportsCurrentQuiescence) {
  auto g = graph::make_path(3);
  Network net(g);
  net.init_programs(
      [](NodeId) { return std::make_unique<ChatterProgram>(4); });

  // Mid-chatter: messages still in flight.
  auto phase1 = net.run_rounds(2);
  EXPECT_FALSE(phase1.quiesced);

  // By round 7 the last send (round 4) has long been delivered and every
  // node has halted; run_rounds must say so. (The old code copied the
  // stale lifetime flag, which run_rounds never set.)
  auto phase2 = net.run_rounds(5);
  EXPECT_TRUE(phase2.quiesced);
}

// ---------------------------------------------------------------------------
// Satellite regression: init_programs reseeds the per-node RNG streams.
// ---------------------------------------------------------------------------

class RngDrawProgram : public congest::NodeProgram {
 public:
  void on_round(NodeContext& ctx) override {
    draws.push_back(ctx.rng().next_below(1u << 30));
    if (ctx.round() >= 3) ctx.vote_halt();
  }

  std::vector<std::uint64_t> draws;
};

TEST(Lifecycle, InitProgramsReseedsNodeRngs) {
  auto g = graph::make_complete(5);
  Network net(g);
  auto run_once = [&net, &g] {
    net.init_programs(
        [](NodeId) { return std::make_unique<RngDrawProgram>(); });
    net.run_rounds(3);
    std::vector<std::vector<std::uint64_t>> all;
    for (NodeId v = 0; v < g.n(); ++v) {
      all.push_back(net.program_as<RngDrawProgram>(v).draws);
    }
    return all;
  };
  const auto first = run_once();
  ASSERT_FALSE(first.empty());
  ASSERT_EQ(first[0].size(), 3u);
  // Distinct nodes get distinct streams...
  EXPECT_NE(first[0], first[1]);
  // ...and a rerun on the same Network reproduces run one bit-for-bit
  // (pre-fix, the second run continued the consumed streams).
  EXPECT_EQ(run_once(), first);
}

// ---------------------------------------------------------------------------
// Satellite regression: adjacency sortedness is validated, not assumed.
// ---------------------------------------------------------------------------

TEST(Lifecycle, NeighborsStrictlySortedPredicate) {
  using congest::neighbors_strictly_sorted;
  const std::vector<NodeId> ok{1, 2, 5};
  const std::vector<NodeId> unsorted{1, 3, 2};
  const std::vector<NodeId> duplicate{1, 1};
  const std::vector<NodeId> empty;
  EXPECT_TRUE(neighbors_strictly_sorted(ok));
  EXPECT_TRUE(neighbors_strictly_sorted(empty));
  EXPECT_FALSE(neighbors_strictly_sorted(unsorted));
  EXPECT_FALSE(neighbors_strictly_sorted(duplicate));
}

// ---------------------------------------------------------------------------
// Fault plan: accounting and determinism.
// ---------------------------------------------------------------------------

TEST(FaultPlan, DisabledPlanIsBitIdenticalToDefault) {
  auto g = random_graph(30, 6, 5);
  auto run = [&g](NetworkConfig cfg) {
    congest::TraceRecorder rec;
    auto out = algos::build_bfs_tree(g, 0, rec.arm(cfg));
    return std::tuple{rec.events(), out.stats, out.status};
  };
  NetworkConfig zeroed;
  zeroed.fault.seed = 999;  // seed alone must not matter: the plan is off
  const auto base = run(NetworkConfig{});
  const auto sameness = run(zeroed);
  EXPECT_EQ(std::get<0>(sameness), std::get<0>(base));
  EXPECT_EQ(std::get<1>(sameness).messages, std::get<1>(base).messages);
  EXPECT_EQ(std::get<1>(sameness).bits, std::get<1>(base).bits);
  EXPECT_EQ(std::get<1>(base).messages_dropped, 0u);
  EXPECT_EQ(std::get<1>(base).messages_corrupted, 0u);
  EXPECT_EQ(std::get<1>(base).crashed_node_rounds, 0u);
  EXPECT_EQ(std::get<2>(base), algos::PhaseStatus::kQuiesced);
}

TEST(FaultPlan, DroppedPlusDeliveredIsConserved) {
  auto g = graph::make_complete(6);
  auto run = [&g](double drop) {
    NetworkConfig cfg;
    cfg.fault.drop_probability = drop;
    cfg.fault.seed = 42;
    Network net(g, cfg);
    net.init_programs(
        [](NodeId) { return std::make_unique<ChatterProgram>(5); });
    return net.run_rounds(6);
  };
  const auto clean = run(0.0);
  EXPECT_EQ(clean.messages_dropped, 0u);
  const auto faulty = run(0.4);
  EXPECT_GT(faulty.messages_dropped, 0u);
  // Chatter sends regardless of its inbox, so the queue contents are
  // identical in both runs and every queued message is either delivered
  // or counted as dropped.
  EXPECT_EQ(faulty.messages + faulty.messages_dropped, clean.messages);
  // Same plan, same run: the decisions are a pure function of the seed.
  const auto again = run(0.4);
  EXPECT_EQ(again.messages, faulty.messages);
  EXPECT_EQ(again.messages_dropped, faulty.messages_dropped);
}

// Receiver-side audit for the corruption test: every delivered message
// must keep its layout (2 fields of widths 6 and 7) — corruption flips a
// bit *inside* a field, it never breaks framing.
class LayoutAuditProgram : public congest::NodeProgram {
 public:
  void on_start(NodeContext& ctx) override { send(ctx); }

  void on_round(NodeContext& ctx) override {
    for (const auto& in : ctx.inbox()) {
      ++received;
      if (in.msg.num_fields() != 2 || in.msg.field_bits(0) != 6 ||
          in.msg.field_bits(1) != 7 || in.msg.field(0) >= (1u << 6) ||
          in.msg.field(1) >= (1u << 7)) {
        malformed = true;
      }
      if (in.msg.field(0) != 9 || in.msg.field(1) != 42) ++altered;
    }
    if (ctx.round() <= 5) send(ctx);
    ctx.vote_halt();
  }

  std::uint64_t received = 0;
  std::uint64_t altered = 0;
  bool malformed = false;

 private:
  void send(NodeContext& ctx) {
    ctx.broadcast(Message().push(9, 6).push(42, 7));
  }
};

TEST(FaultPlan, CorruptionFlipsBitsButKeepsMessagesWellFormed) {
  auto g = graph::make_complete(4);
  NetworkConfig cfg;
  cfg.fault.corrupt_probability = 1.0;  // flip one bit of every delivery
  cfg.fault.seed = 7;
  Network net(g, cfg);
  net.init_programs(
      [](NodeId) { return std::make_unique<LayoutAuditProgram>(); });
  auto stats = net.run_rounds(6);
  EXPECT_GT(stats.messages, 0u);
  EXPECT_EQ(stats.messages_corrupted, stats.messages);
  std::uint64_t received = 0, altered = 0;
  for (NodeId v = 0; v < g.n(); ++v) {
    const auto& p = net.program_as<LayoutAuditProgram>(v);
    EXPECT_FALSE(p.malformed) << "node " << v;
    received += p.received;
    altered += p.altered;
  }
  EXPECT_EQ(received, stats.messages);
  // One flipped bit always changes exactly one field value.
  EXPECT_EQ(altered, stats.messages);
}

TEST(FaultPlan, CrashWindowAccountingIsExact) {
  auto g = graph::make_complete(3);
  NetworkConfig cfg;
  cfg.fault.crashes = {CrashWindow{1, 2, 5}};  // node 1 down rounds 2-4
  Network net(g, cfg);
  net.init_programs(
      [](NodeId) { return std::make_unique<ChatterProgram>(5); });
  auto stats = net.run_rounds(6);
  EXPECT_EQ(stats.crashed_node_rounds, 3u);
  // Round 2 drops node 1's two queued sends plus the two sends addressed
  // to it; rounds 3-4 drop only the two inbound each (a crashed node
  // queues nothing).
  EXPECT_EQ(stats.messages_dropped, 8u);
}

TEST(CrashIndex, MatchesFaultPlanCrashedOnEveryNodeRound) {
  // The O(1)-per-check index the Network uses in the delivery hot loop
  // must agree with the linear-scan reference on every (node, round) pair:
  // overlapping windows, repeat windows for one node, never-recovering
  // windows, and nodes with no window at all.
  const std::uint32_t n = 12;
  congest::FaultPlan plan;
  plan.crashes = {
      CrashWindow{3, 2, 5},   CrashWindow{3, 8, 10},  // two windows, one node
      CrashWindow{5, 1, 0},                           // never recovers
      CrashWindow{7, 4, 6},   CrashWindow{7, 5, 9},   // overlapping
      CrashWindow{11, 30, 31},
  };
  congest::CrashIndex index(plan, n);
  for (std::uint32_t round = 1; round <= 40; ++round) {
    index.refresh(round);
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_EQ(index.down(v), plan.crashed(v, round))
          << "node " << v << " round " << round;
    }
  }
}

TEST(CrashIndex, EmptyPlanNeverReportsDown) {
  congest::CrashIndex index(congest::FaultPlan{}, 8);
  index.refresh(1);
  for (NodeId v = 0; v < 8; ++v) EXPECT_FALSE(index.down(v));
}

TEST(CrashIndex, EnginesAgreeUnderCrashPlan) {
  // The index is refreshed inside the parallel round barrier as well; both
  // engines must keep producing identical fault accounting.
  auto g = random_graph(24, 4, 31);
  NetworkConfig cfg;
  cfg.fault.crashes = {CrashWindow{2, 2, 6}, CrashWindow{9, 1, 0},
                       CrashWindow{15, 3, 4}};
  cfg.fault.drop_probability = 0.05;
  congest::RunStats seq_stats, par_stats;
  for (auto engine : {congest::Engine::kSequential, congest::Engine::kParallel}) {
    cfg.engine = engine;
    cfg.num_threads = engine == congest::Engine::kParallel ? 4 : 0;
    Network net(g, cfg);
    net.init_programs(
        [](NodeId) { return std::make_unique<ChatterProgram>(8); });
    auto stats = net.run_rounds(10);
    (engine == congest::Engine::kSequential ? seq_stats : par_stats) = stats;
  }
  EXPECT_EQ(seq_stats.crashed_node_rounds, par_stats.crashed_node_rounds);
  EXPECT_EQ(seq_stats.messages, par_stats.messages);
  EXPECT_EQ(seq_stats.messages_dropped, par_stats.messages_dropped);
  EXPECT_EQ(seq_stats.bits, par_stats.bits);
}

TEST(FaultPlan, ShardedEngineAgreesUnderActiveFaultPlan) {
  // Fault decisions are stateless hashes of (seed, round, from, to), so
  // they cannot depend on which process rolls them — but only if every
  // worker refreshes the crash index over ALL nodes and receiver-side drop
  // checks see crashed foreign senders. This test pins that: identical
  // fault counters and phase outcomes, single-process vs every W.
  auto g = random_graph(30, 5, 31);
  NetworkConfig cfg;
  cfg.fault.crashes = {CrashWindow{2, 2, 6}, CrashWindow{9, 1, 0},
                       CrashWindow{17, 3, 4}};
  cfg.fault.drop_probability = 0.08;
  cfg.fault.corrupt_probability = 0.05;
  cfg.fault.seed = 13;

  congest::RunStats seq_stats;
  {
    Network net(g, cfg);
    net.init_programs(
        [](NodeId) { return std::make_unique<ChatterProgram>(8); });
    seq_stats = net.run_rounds(10);
  }
  // BFS under the same plan: phase status and (degraded) tree must match.
  const auto seq_bfs = algos::build_bfs_tree(g, 0, cfg, 40);

  for (const std::uint32_t w : {1u, 2u, 3u, 8u}) {
    congest::shard::ShardConfig scfg;
    scfg.shards = w;
    scfg.net = cfg;
    congest::shard::ShardedNetwork net(g, scfg);
    net.init_programs(
        [](NodeId) { return std::make_unique<ChatterProgram>(8); });
    const auto st = net.run_rounds(10);
    EXPECT_EQ(st.messages, seq_stats.messages) << "W=" << w;
    EXPECT_EQ(st.bits, seq_stats.bits) << "W=" << w;
    EXPECT_EQ(st.messages_dropped, seq_stats.messages_dropped) << "W=" << w;
    EXPECT_EQ(st.messages_corrupted, seq_stats.messages_corrupted)
        << "W=" << w;
    EXPECT_EQ(st.crashed_node_rounds, seq_stats.crashed_node_rounds)
        << "W=" << w;
    EXPECT_EQ(st.quiesced, seq_stats.quiesced) << "W=" << w;

    const auto bfs = algos::build_bfs_tree_on(net, 0, 40);
    EXPECT_EQ(static_cast<int>(bfs.status),
              static_cast<int>(seq_bfs.status))
        << "W=" << w;
    EXPECT_EQ(bfs.tree.parent, seq_bfs.tree.parent) << "W=" << w;
    EXPECT_EQ(bfs.tree.depth, seq_bfs.tree.depth) << "W=" << w;
    EXPECT_EQ(bfs.stats.rounds, seq_bfs.stats.rounds) << "W=" << w;
    EXPECT_EQ(bfs.stats.messages_dropped, seq_bfs.stats.messages_dropped)
        << "W=" << w;
    EXPECT_EQ(bfs.stats.messages_corrupted, seq_bfs.stats.messages_corrupted)
        << "W=" << w;
    EXPECT_EQ(bfs.stats.crashed_node_rounds,
              seq_bfs.stats.crashed_node_rounds)
        << "W=" << w;
  }
}

TEST(FaultPlan, ForAttemptDecorrelatesButKeepsAttemptZero) {
  congest::FaultPlan plan;
  plan.drop_probability = 0.2;
  plan.seed = 5;
  EXPECT_EQ(plan.for_attempt(0).seed, plan.seed);
  EXPECT_NE(plan.for_attempt(1).seed, plan.seed);
  EXPECT_NE(plan.for_attempt(2).seed, plan.for_attempt(1).seed);
  EXPECT_EQ(plan.for_attempt(1).drop_probability, plan.drop_probability);
}

TEST(FaultPlan, InvalidPlansFailLoudlyAtConstruction) {
  auto g = graph::make_path(3);
  NetworkConfig bad_prob;
  bad_prob.fault.drop_probability = 1.5;
  EXPECT_THROW(Network(g, bad_prob), InvalidArgumentError);
  NetworkConfig bad_node;
  bad_node.fault.crashes = {CrashWindow{7, 1, 0}};
  EXPECT_THROW(Network(g, bad_node), InvalidArgumentError);
  NetworkConfig bad_window;
  bad_window.fault.crashes = {CrashWindow{0, 3, 2}};
  EXPECT_THROW(Network(g, bad_window), InvalidArgumentError);
}

// ---------------------------------------------------------------------------
// BandwidthPolicy::kTruncate.
// ---------------------------------------------------------------------------

TEST(Truncate, MessageTruncatedKeepsLeadingFields) {
  const auto msg = Message().push(3, 5).push(200, 8).push(1, 4);
  // Whole message fits: unchanged.
  EXPECT_EQ(msg.truncated(17), msg);
  // First field whole, second narrowed to 3 bits (low bits of 200 = 0).
  const auto cut = msg.truncated(8);
  EXPECT_EQ(cut.num_fields(), 2u);
  EXPECT_EQ(cut.size_bits(), 8u);
  EXPECT_EQ(cut.field(0), 3u);
  EXPECT_EQ(cut.field_bits(1), 3u);
  EXPECT_EQ(cut.field(1), 200u & 0x7u);
  // Cut inside the first field.
  EXPECT_EQ(msg.truncated(2).num_fields(), 1u);
  EXPECT_EQ(msg.truncated(2).field(0), 3u & 0x3u);
  // Nothing fits.
  EXPECT_EQ(msg.truncated(0).num_fields(), 0u);
}

class OversizedSender : public congest::NodeProgram {
 public:
  void on_round(NodeContext& ctx) override {
    if (ctx.id() == 0 && ctx.round() == 1) {
      ctx.broadcast(Message().push(3, 5).push(200, 8));  // 13 bits
    }
    if (ctx.round() >= 2) {
      for (const auto& in : ctx.inbox()) inbox.push_back(in.msg);
      ctx.vote_halt();
    }
  }

  std::vector<Message> inbox;
};

TEST(Truncate, PolicyClipsInsteadOfThrowing) {
  auto g = graph::make_path(2);
  NetworkConfig cfg;
  cfg.bandwidth_bits = 8;
  cfg.policy = congest::BandwidthPolicy::kTruncate;
  Network net(g, cfg);
  net.init_programs([](NodeId) { return std::make_unique<OversizedSender>(); });
  auto stats = net.run_until_quiescent(5);
  EXPECT_TRUE(stats.quiesced);
  EXPECT_EQ(stats.violations, 1u);
  EXPECT_EQ(stats.max_edge_bits, 8u);  // stats count the clipped bits
  const auto& receiver = net.program_as<OversizedSender>(1);
  ASSERT_EQ(receiver.inbox.size(), 1u);
  EXPECT_EQ(receiver.inbox[0].size_bits(), 8u);
  EXPECT_EQ(receiver.inbox[0].field(0), 3u);

  NetworkConfig strict = cfg;
  strict.policy = congest::BandwidthPolicy::kEnforce;
  Network net2(g, strict);
  net2.init_programs(
      [](NodeId) { return std::make_unique<OversizedSender>(); });
  EXPECT_THROW(net2.run_until_quiescent(5), BandwidthViolationError);
}

// ---------------------------------------------------------------------------
// Graceful degradation of the algorithm layer.
// ---------------------------------------------------------------------------

TEST(GracefulDegradation, BfsUnderDropsReportsInsteadOfAborting) {
  auto g = random_graph(40, 7, 3);
  NetworkConfig cfg;
  cfg.fault.drop_probability = 0.05;
  cfg.fault.seed = 11;
  algos::BfsOutcome out;
  EXPECT_NO_THROW(out = algos::build_bfs_tree(g, 0, cfg));
  // Any status is acceptable — what matters is that faults never abort.
  // A clean-status tree must at least span the graph (a dropped
  // activation can delay a node, so depths are >= the true distances and
  // the height can exceed ecc(0), but never undercut it).
  if (out.status == algos::PhaseStatus::kQuiesced) {
    for (NodeId v = 1; v < g.n(); ++v) {
      EXPECT_NE(out.tree.parent[v], graph::kInvalidNode) << "node " << v;
    }
    EXPECT_GE(out.tree.height, graph::eccentricity(g, 0));
  }

  auto retried = algos::build_bfs_tree_with_retry(g, 0, cfg);
  EXPECT_GE(retried.attempts, 1u);
  EXPECT_LE(retried.attempts, 3u);
  EXPECT_GE(retried.stats.rounds, out.stats.rounds);
}

TEST(GracefulDegradation, RetryWrapperIsIdentityOnCleanRuns) {
  auto g = random_graph(25, 5, 9);
  auto plain = algos::build_bfs_tree(g, 2);
  auto retried = algos::build_bfs_tree_with_retry(g, 2);
  EXPECT_EQ(retried.attempts, 1u);
  EXPECT_EQ(retried.status, algos::PhaseStatus::kQuiesced);
  EXPECT_EQ(retried.tree.parent, plain.tree.parent);
  EXPECT_EQ(retried.stats.rounds, plain.stats.rounds);
}

TEST(GracefulDegradation, PermanentCrashSurfacesAsNonQuiesced) {
  auto g = graph::make_path(6);
  NetworkConfig cfg;
  cfg.fault.crashes = {CrashWindow{5, 1, 0}};  // the far end never speaks
  auto out = algos::build_bfs_tree(g, 0, cfg);
  EXPECT_NE(out.status, algos::PhaseStatus::kQuiesced);
  // The reachable prefix is still built.
  EXPECT_EQ(out.tree.parent[1], 0u);
}

TEST(GracefulDegradation, GirthCensusCarriesStatus) {
  auto g = graph::make_torus(4, 4);
  auto clean = algos::classical_girth_census(g);
  EXPECT_EQ(clean.status, algos::PhaseStatus::kQuiesced);
  EXPECT_EQ(clean.girth, 4u);

  NetworkConfig cfg;
  cfg.fault.drop_probability = 0.2;
  cfg.fault.seed = 13;
  algos::GirthOutcome noisy;
  EXPECT_NO_THROW(noisy = algos::classical_girth_census(g, cfg));
}

TEST(GracefulDegradation, OptimizerSurfacesSubroutineFailure) {
  core::OptimizationProblem prob;
  prob.domain_size = 8;
  prob.epsilon = 0.5;
  prob.evaluate = [](std::size_t x) -> std::int64_t {
    if (x == 3) throw BandwidthViolationError("simulated branch blowup");
    return static_cast<std::int64_t>(x);
  };
  Rng rng(1);
  core::OptimizationReport rep;
  EXPECT_NO_THROW(rep = core::distributed_quantum_optimize(prob, rng));
  EXPECT_TRUE(rep.subroutine_failed);
  EXPECT_NE(rep.failure_reason.find("blowup"), std::string::npos);

  core::SearchProblem sp;
  sp.domain_size = 8;
  sp.epsilon = 0.5;
  sp.marked = [](std::size_t) -> bool {
    throw InternalError("predicate died");
  };
  core::SearchReport srep;
  EXPECT_NO_THROW(srep = core::distributed_quantum_search(sp, rng));
  EXPECT_TRUE(srep.subroutine_failed);
  EXPECT_FALSE(srep.found);

  // Precondition violations are caller bugs and still throw.
  core::OptimizationProblem bad;
  EXPECT_THROW(core::distributed_quantum_optimize(bad, rng),
               InvalidArgumentError);
}

}  // namespace
}  // namespace qc
