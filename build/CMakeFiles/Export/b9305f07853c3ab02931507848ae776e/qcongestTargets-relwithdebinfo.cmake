#----------------------------------------------------------------
# Generated CMake target import file for configuration "RelWithDebInfo".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "qcongest::qc_util" for configuration "RelWithDebInfo"
set_property(TARGET qcongest::qc_util APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(qcongest::qc_util PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libqc_util.a"
  )

list(APPEND _cmake_import_check_targets qcongest::qc_util )
list(APPEND _cmake_import_check_files_for_qcongest::qc_util "${_IMPORT_PREFIX}/lib/libqc_util.a" )

# Import target "qcongest::qc_graph" for configuration "RelWithDebInfo"
set_property(TARGET qcongest::qc_graph APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(qcongest::qc_graph PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libqc_graph.a"
  )

list(APPEND _cmake_import_check_targets qcongest::qc_graph )
list(APPEND _cmake_import_check_files_for_qcongest::qc_graph "${_IMPORT_PREFIX}/lib/libqc_graph.a" )

# Import target "qcongest::qc_congest" for configuration "RelWithDebInfo"
set_property(TARGET qcongest::qc_congest APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(qcongest::qc_congest PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libqc_congest.a"
  )

list(APPEND _cmake_import_check_targets qcongest::qc_congest )
list(APPEND _cmake_import_check_files_for_qcongest::qc_congest "${_IMPORT_PREFIX}/lib/libqc_congest.a" )

# Import target "qcongest::qc_algos" for configuration "RelWithDebInfo"
set_property(TARGET qcongest::qc_algos APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(qcongest::qc_algos PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libqc_algos.a"
  )

list(APPEND _cmake_import_check_targets qcongest::qc_algos )
list(APPEND _cmake_import_check_files_for_qcongest::qc_algos "${_IMPORT_PREFIX}/lib/libqc_algos.a" )

# Import target "qcongest::qc_qsim" for configuration "RelWithDebInfo"
set_property(TARGET qcongest::qc_qsim APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(qcongest::qc_qsim PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libqc_qsim.a"
  )

list(APPEND _cmake_import_check_targets qcongest::qc_qsim )
list(APPEND _cmake_import_check_files_for_qcongest::qc_qsim "${_IMPORT_PREFIX}/lib/libqc_qsim.a" )

# Import target "qcongest::qc_core" for configuration "RelWithDebInfo"
set_property(TARGET qcongest::qc_core APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(qcongest::qc_core PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libqc_core.a"
  )

list(APPEND _cmake_import_check_targets qcongest::qc_core )
list(APPEND _cmake_import_check_files_for_qcongest::qc_core "${_IMPORT_PREFIX}/lib/libqc_core.a" )

# Import target "qcongest::qc_commcc" for configuration "RelWithDebInfo"
set_property(TARGET qcongest::qc_commcc APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(qcongest::qc_commcc PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libqc_commcc.a"
  )

list(APPEND _cmake_import_check_targets qcongest::qc_commcc )
list(APPEND _cmake_import_check_files_for_qcongest::qc_commcc "${_IMPORT_PREFIX}/lib/libqc_commcc.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
