file(REMOVE_RECURSE
  "../bench/bench_memory"
  "../bench/bench_memory.pdb"
  "CMakeFiles/bench_memory.dir/bench_memory.cpp.o"
  "CMakeFiles/bench_memory.dir/bench_memory.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
