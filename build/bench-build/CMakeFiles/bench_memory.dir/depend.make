# Empty dependencies file for bench_memory.
# This may be replaced when dependencies are built.
