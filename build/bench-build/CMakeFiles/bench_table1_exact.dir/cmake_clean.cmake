file(REMOVE_RECURSE
  "../bench/bench_table1_exact"
  "../bench/bench_table1_exact.pdb"
  "CMakeFiles/bench_table1_exact.dir/bench_table1_exact.cpp.o"
  "CMakeFiles/bench_table1_exact.dir/bench_table1_exact.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_exact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
