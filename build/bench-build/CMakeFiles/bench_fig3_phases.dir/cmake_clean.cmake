file(REMOVE_RECURSE
  "../bench/bench_fig3_phases"
  "../bench/bench_fig3_phases.pdb"
  "CMakeFiles/bench_fig3_phases.dir/bench_fig3_phases.cpp.o"
  "CMakeFiles/bench_fig3_phases.dir/bench_fig3_phases.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
