# Empty dependencies file for bench_fig3_phases.
# This may be replaced when dependencies are built.
