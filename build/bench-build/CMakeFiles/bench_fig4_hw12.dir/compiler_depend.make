# Empty compiler generated dependencies file for bench_fig4_hw12.
# This may be replaced when dependencies are built.
