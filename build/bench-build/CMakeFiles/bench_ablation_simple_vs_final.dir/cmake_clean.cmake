file(REMOVE_RECURSE
  "../bench/bench_ablation_simple_vs_final"
  "../bench/bench_ablation_simple_vs_final.pdb"
  "CMakeFiles/bench_ablation_simple_vs_final.dir/bench_ablation_simple_vs_final.cpp.o"
  "CMakeFiles/bench_ablation_simple_vs_final.dir/bench_ablation_simple_vs_final.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_simple_vs_final.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
