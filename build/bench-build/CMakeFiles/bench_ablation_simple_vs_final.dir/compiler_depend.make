# Empty compiler generated dependencies file for bench_ablation_simple_vs_final.
# This may be replaced when dependencies are built.
