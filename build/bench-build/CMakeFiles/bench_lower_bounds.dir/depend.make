# Empty dependencies file for bench_lower_bounds.
# This may be replaced when dependencies are built.
