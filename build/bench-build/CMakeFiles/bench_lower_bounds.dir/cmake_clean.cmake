file(REMOVE_RECURSE
  "../bench/bench_lower_bounds"
  "../bench/bench_lower_bounds.pdb"
  "CMakeFiles/bench_lower_bounds.dir/bench_lower_bounds.cpp.o"
  "CMakeFiles/bench_lower_bounds.dir/bench_lower_bounds.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lower_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
