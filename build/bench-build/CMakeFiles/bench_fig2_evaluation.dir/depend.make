# Empty dependencies file for bench_fig2_evaluation.
# This may be replaced when dependencies are built.
