file(REMOVE_RECURSE
  "../bench/bench_fig2_evaluation"
  "../bench/bench_fig2_evaluation.pdb"
  "CMakeFiles/bench_fig2_evaluation.dir/bench_fig2_evaluation.cpp.o"
  "CMakeFiles/bench_fig2_evaluation.dir/bench_fig2_evaluation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_evaluation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
