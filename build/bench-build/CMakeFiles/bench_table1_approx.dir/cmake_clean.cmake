file(REMOVE_RECURSE
  "../bench/bench_table1_approx"
  "../bench/bench_table1_approx.pdb"
  "CMakeFiles/bench_table1_approx.dir/bench_table1_approx.cpp.o"
  "CMakeFiles/bench_table1_approx.dir/bench_table1_approx.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_approx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
