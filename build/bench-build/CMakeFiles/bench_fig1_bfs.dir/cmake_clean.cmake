file(REMOVE_RECURSE
  "../bench/bench_fig1_bfs"
  "../bench/bench_fig1_bfs.pdb"
  "CMakeFiles/bench_fig1_bfs.dir/bench_fig1_bfs.cpp.o"
  "CMakeFiles/bench_fig1_bfs.dir/bench_fig1_bfs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_bfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
