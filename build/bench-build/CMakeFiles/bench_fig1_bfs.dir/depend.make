# Empty dependencies file for bench_fig1_bfs.
# This may be replaced when dependencies are built.
