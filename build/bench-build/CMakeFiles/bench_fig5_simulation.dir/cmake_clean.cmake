file(REMOVE_RECURSE
  "../bench/bench_fig5_simulation"
  "../bench/bench_fig5_simulation.pdb"
  "CMakeFiles/bench_fig5_simulation.dir/bench_fig5_simulation.cpp.o"
  "CMakeFiles/bench_fig5_simulation.dir/bench_fig5_simulation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
