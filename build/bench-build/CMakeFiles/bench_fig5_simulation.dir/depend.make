# Empty dependencies file for bench_fig5_simulation.
# This may be replaced when dependencies are built.
