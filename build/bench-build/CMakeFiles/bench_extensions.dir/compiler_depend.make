# Empty compiler generated dependencies file for bench_extensions.
# This may be replaced when dependencies are built.
