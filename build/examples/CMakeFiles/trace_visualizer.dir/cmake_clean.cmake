file(REMOVE_RECURSE
  "CMakeFiles/trace_visualizer.dir/trace_visualizer.cpp.o"
  "CMakeFiles/trace_visualizer.dir/trace_visualizer.cpp.o.d"
  "trace_visualizer"
  "trace_visualizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_visualizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
