# Empty compiler generated dependencies file for quantum_search_playground.
# This may be replaced when dependencies are built.
