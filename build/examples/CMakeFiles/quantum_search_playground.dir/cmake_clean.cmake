file(REMOVE_RECURSE
  "CMakeFiles/quantum_search_playground.dir/quantum_search_playground.cpp.o"
  "CMakeFiles/quantum_search_playground.dir/quantum_search_playground.cpp.o.d"
  "quantum_search_playground"
  "quantum_search_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quantum_search_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
