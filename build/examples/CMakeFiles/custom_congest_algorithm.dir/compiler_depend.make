# Empty compiler generated dependencies file for custom_congest_algorithm.
# This may be replaced when dependencies are built.
