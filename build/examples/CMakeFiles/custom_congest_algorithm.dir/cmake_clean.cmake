file(REMOVE_RECURSE
  "CMakeFiles/custom_congest_algorithm.dir/custom_congest_algorithm.cpp.o"
  "CMakeFiles/custom_congest_algorithm.dir/custom_congest_algorithm.cpp.o.d"
  "custom_congest_algorithm"
  "custom_congest_algorithm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_congest_algorithm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
