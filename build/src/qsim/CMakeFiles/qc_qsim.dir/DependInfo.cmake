
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qsim/amplitude_vector.cpp" "src/qsim/CMakeFiles/qc_qsim.dir/amplitude_vector.cpp.o" "gcc" "src/qsim/CMakeFiles/qc_qsim.dir/amplitude_vector.cpp.o.d"
  "/root/repo/src/qsim/counting.cpp" "src/qsim/CMakeFiles/qc_qsim.dir/counting.cpp.o" "gcc" "src/qsim/CMakeFiles/qc_qsim.dir/counting.cpp.o.d"
  "/root/repo/src/qsim/search.cpp" "src/qsim/CMakeFiles/qc_qsim.dir/search.cpp.o" "gcc" "src/qsim/CMakeFiles/qc_qsim.dir/search.cpp.o.d"
  "/root/repo/src/qsim/statevector.cpp" "src/qsim/CMakeFiles/qc_qsim.dir/statevector.cpp.o" "gcc" "src/qsim/CMakeFiles/qc_qsim.dir/statevector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/qc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
