# Empty compiler generated dependencies file for qc_qsim.
# This may be replaced when dependencies are built.
