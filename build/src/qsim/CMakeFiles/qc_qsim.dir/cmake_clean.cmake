file(REMOVE_RECURSE
  "CMakeFiles/qc_qsim.dir/amplitude_vector.cpp.o"
  "CMakeFiles/qc_qsim.dir/amplitude_vector.cpp.o.d"
  "CMakeFiles/qc_qsim.dir/counting.cpp.o"
  "CMakeFiles/qc_qsim.dir/counting.cpp.o.d"
  "CMakeFiles/qc_qsim.dir/search.cpp.o"
  "CMakeFiles/qc_qsim.dir/search.cpp.o.d"
  "CMakeFiles/qc_qsim.dir/statevector.cpp.o"
  "CMakeFiles/qc_qsim.dir/statevector.cpp.o.d"
  "libqc_qsim.a"
  "libqc_qsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qc_qsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
