file(REMOVE_RECURSE
  "libqc_qsim.a"
)
