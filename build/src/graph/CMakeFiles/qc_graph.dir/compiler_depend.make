# Empty compiler generated dependencies file for qc_graph.
# This may be replaced when dependencies are built.
