file(REMOVE_RECURSE
  "CMakeFiles/qc_graph.dir/algorithms.cpp.o"
  "CMakeFiles/qc_graph.dir/algorithms.cpp.o.d"
  "CMakeFiles/qc_graph.dir/generators.cpp.o"
  "CMakeFiles/qc_graph.dir/generators.cpp.o.d"
  "CMakeFiles/qc_graph.dir/graph.cpp.o"
  "CMakeFiles/qc_graph.dir/graph.cpp.o.d"
  "CMakeFiles/qc_graph.dir/io.cpp.o"
  "CMakeFiles/qc_graph.dir/io.cpp.o.d"
  "libqc_graph.a"
  "libqc_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qc_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
