file(REMOVE_RECURSE
  "libqc_graph.a"
)
