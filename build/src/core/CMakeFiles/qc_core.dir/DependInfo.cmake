
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/detail.cpp" "src/core/CMakeFiles/qc_core.dir/detail.cpp.o" "gcc" "src/core/CMakeFiles/qc_core.dir/detail.cpp.o.d"
  "/root/repo/src/core/optimizer.cpp" "src/core/CMakeFiles/qc_core.dir/optimizer.cpp.o" "gcc" "src/core/CMakeFiles/qc_core.dir/optimizer.cpp.o.d"
  "/root/repo/src/core/quantum_approx.cpp" "src/core/CMakeFiles/qc_core.dir/quantum_approx.cpp.o" "gcc" "src/core/CMakeFiles/qc_core.dir/quantum_approx.cpp.o.d"
  "/root/repo/src/core/quantum_decision.cpp" "src/core/CMakeFiles/qc_core.dir/quantum_decision.cpp.o" "gcc" "src/core/CMakeFiles/qc_core.dir/quantum_decision.cpp.o.d"
  "/root/repo/src/core/quantum_diameter.cpp" "src/core/CMakeFiles/qc_core.dir/quantum_diameter.cpp.o" "gcc" "src/core/CMakeFiles/qc_core.dir/quantum_diameter.cpp.o.d"
  "/root/repo/src/core/quantum_radius.cpp" "src/core/CMakeFiles/qc_core.dir/quantum_radius.cpp.o" "gcc" "src/core/CMakeFiles/qc_core.dir/quantum_radius.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/algos/CMakeFiles/qc_algos.dir/DependInfo.cmake"
  "/root/repo/build/src/qsim/CMakeFiles/qc_qsim.dir/DependInfo.cmake"
  "/root/repo/build/src/congest/CMakeFiles/qc_congest.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/qc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/qc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
