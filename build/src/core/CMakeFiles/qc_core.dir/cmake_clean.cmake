file(REMOVE_RECURSE
  "CMakeFiles/qc_core.dir/detail.cpp.o"
  "CMakeFiles/qc_core.dir/detail.cpp.o.d"
  "CMakeFiles/qc_core.dir/optimizer.cpp.o"
  "CMakeFiles/qc_core.dir/optimizer.cpp.o.d"
  "CMakeFiles/qc_core.dir/quantum_approx.cpp.o"
  "CMakeFiles/qc_core.dir/quantum_approx.cpp.o.d"
  "CMakeFiles/qc_core.dir/quantum_decision.cpp.o"
  "CMakeFiles/qc_core.dir/quantum_decision.cpp.o.d"
  "CMakeFiles/qc_core.dir/quantum_diameter.cpp.o"
  "CMakeFiles/qc_core.dir/quantum_diameter.cpp.o.d"
  "CMakeFiles/qc_core.dir/quantum_radius.cpp.o"
  "CMakeFiles/qc_core.dir/quantum_radius.cpp.o.d"
  "libqc_core.a"
  "libqc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
