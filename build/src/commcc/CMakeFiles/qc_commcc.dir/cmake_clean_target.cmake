file(REMOVE_RECURSE
  "libqc_commcc.a"
)
