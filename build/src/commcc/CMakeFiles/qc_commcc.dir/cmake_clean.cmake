file(REMOVE_RECURSE
  "CMakeFiles/qc_commcc.dir/reductions.cpp.o"
  "CMakeFiles/qc_commcc.dir/reductions.cpp.o.d"
  "CMakeFiles/qc_commcc.dir/two_party.cpp.o"
  "CMakeFiles/qc_commcc.dir/two_party.cpp.o.d"
  "libqc_commcc.a"
  "libqc_commcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qc_commcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
