# Empty dependencies file for qc_commcc.
# This may be replaced when dependencies are built.
