# Empty compiler generated dependencies file for qc_algos.
# This may be replaced when dependencies are built.
