file(REMOVE_RECURSE
  "CMakeFiles/qc_algos.dir/apsp_census.cpp.o"
  "CMakeFiles/qc_algos.dir/apsp_census.cpp.o.d"
  "CMakeFiles/qc_algos.dir/bfs_tree.cpp.o"
  "CMakeFiles/qc_algos.dir/bfs_tree.cpp.o.d"
  "CMakeFiles/qc_algos.dir/diameter_classical.cpp.o"
  "CMakeFiles/qc_algos.dir/diameter_classical.cpp.o.d"
  "CMakeFiles/qc_algos.dir/evaluation.cpp.o"
  "CMakeFiles/qc_algos.dir/evaluation.cpp.o.d"
  "CMakeFiles/qc_algos.dir/girth.cpp.o"
  "CMakeFiles/qc_algos.dir/girth.cpp.o.d"
  "CMakeFiles/qc_algos.dir/hprw.cpp.o"
  "CMakeFiles/qc_algos.dir/hprw.cpp.o.d"
  "CMakeFiles/qc_algos.dir/leader_election.cpp.o"
  "CMakeFiles/qc_algos.dir/leader_election.cpp.o.d"
  "CMakeFiles/qc_algos.dir/source_detection.cpp.o"
  "CMakeFiles/qc_algos.dir/source_detection.cpp.o.d"
  "libqc_algos.a"
  "libqc_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qc_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
