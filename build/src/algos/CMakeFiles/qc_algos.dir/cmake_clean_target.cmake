file(REMOVE_RECURSE
  "libqc_algos.a"
)
