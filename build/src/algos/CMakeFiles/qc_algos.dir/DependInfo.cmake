
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algos/apsp_census.cpp" "src/algos/CMakeFiles/qc_algos.dir/apsp_census.cpp.o" "gcc" "src/algos/CMakeFiles/qc_algos.dir/apsp_census.cpp.o.d"
  "/root/repo/src/algos/bfs_tree.cpp" "src/algos/CMakeFiles/qc_algos.dir/bfs_tree.cpp.o" "gcc" "src/algos/CMakeFiles/qc_algos.dir/bfs_tree.cpp.o.d"
  "/root/repo/src/algos/diameter_classical.cpp" "src/algos/CMakeFiles/qc_algos.dir/diameter_classical.cpp.o" "gcc" "src/algos/CMakeFiles/qc_algos.dir/diameter_classical.cpp.o.d"
  "/root/repo/src/algos/evaluation.cpp" "src/algos/CMakeFiles/qc_algos.dir/evaluation.cpp.o" "gcc" "src/algos/CMakeFiles/qc_algos.dir/evaluation.cpp.o.d"
  "/root/repo/src/algos/girth.cpp" "src/algos/CMakeFiles/qc_algos.dir/girth.cpp.o" "gcc" "src/algos/CMakeFiles/qc_algos.dir/girth.cpp.o.d"
  "/root/repo/src/algos/hprw.cpp" "src/algos/CMakeFiles/qc_algos.dir/hprw.cpp.o" "gcc" "src/algos/CMakeFiles/qc_algos.dir/hprw.cpp.o.d"
  "/root/repo/src/algos/leader_election.cpp" "src/algos/CMakeFiles/qc_algos.dir/leader_election.cpp.o" "gcc" "src/algos/CMakeFiles/qc_algos.dir/leader_election.cpp.o.d"
  "/root/repo/src/algos/source_detection.cpp" "src/algos/CMakeFiles/qc_algos.dir/source_detection.cpp.o" "gcc" "src/algos/CMakeFiles/qc_algos.dir/source_detection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/congest/CMakeFiles/qc_congest.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/qc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/qc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
