file(REMOVE_RECURSE
  "CMakeFiles/qc_congest.dir/network.cpp.o"
  "CMakeFiles/qc_congest.dir/network.cpp.o.d"
  "libqc_congest.a"
  "libqc_congest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qc_congest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
