# Empty dependencies file for qc_congest.
# This may be replaced when dependencies are built.
