file(REMOVE_RECURSE
  "libqc_congest.a"
)
