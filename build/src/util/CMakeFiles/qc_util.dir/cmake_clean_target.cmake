file(REMOVE_RECURSE
  "libqc_util.a"
)
