file(REMOVE_RECURSE
  "CMakeFiles/qc_util.dir/cli.cpp.o"
  "CMakeFiles/qc_util.dir/cli.cpp.o.d"
  "CMakeFiles/qc_util.dir/rng.cpp.o"
  "CMakeFiles/qc_util.dir/rng.cpp.o.d"
  "CMakeFiles/qc_util.dir/stats.cpp.o"
  "CMakeFiles/qc_util.dir/stats.cpp.o.d"
  "CMakeFiles/qc_util.dir/table.cpp.o"
  "CMakeFiles/qc_util.dir/table.cpp.o.d"
  "libqc_util.a"
  "libqc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
