# Install script for directory: /root/repo

# Set the install prefix
if(NOT DEFINED CMAKE_INSTALL_PREFIX)
  set(CMAKE_INSTALL_PREFIX "/usr/local")
endif()
string(REGEX REPLACE "/$" "" CMAKE_INSTALL_PREFIX "${CMAKE_INSTALL_PREFIX}")

# Set the install configuration name.
if(NOT DEFINED CMAKE_INSTALL_CONFIG_NAME)
  if(BUILD_TYPE)
    string(REGEX REPLACE "^[^A-Za-z0-9_]+" ""
           CMAKE_INSTALL_CONFIG_NAME "${BUILD_TYPE}")
  else()
    set(CMAKE_INSTALL_CONFIG_NAME "RelWithDebInfo")
  endif()
  message(STATUS "Install configuration: \"${CMAKE_INSTALL_CONFIG_NAME}\"")
endif()

# Set the component getting installed.
if(NOT CMAKE_INSTALL_COMPONENT)
  if(COMPONENT)
    message(STATUS "Install component: \"${COMPONENT}\"")
    set(CMAKE_INSTALL_COMPONENT "${COMPONENT}")
  else()
    set(CMAKE_INSTALL_COMPONENT)
  endif()
endif()

# Install shared libraries without execute permission?
if(NOT DEFINED CMAKE_INSTALL_SO_NO_EXE)
  set(CMAKE_INSTALL_SO_NO_EXE "1")
endif()

# Is this installation the result of a crosscompile?
if(NOT DEFINED CMAKE_CROSSCOMPILING)
  set(CMAKE_CROSSCOMPILING "FALSE")
endif()

# Set default install directory permissions.
if(NOT DEFINED CMAKE_OBJDUMP)
  set(CMAKE_OBJDUMP "/usr/bin/objdump")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/tests/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/bench-build/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/examples/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/tools/cmake_install.cmake")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/util/libqc_util.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/graph/libqc_graph.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/congest/libqc_congest.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/algos/libqc_algos.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/qsim/libqc_qsim.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/core/libqc_core.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/commcc/libqc_commcc.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/qcongest" TYPE DIRECTORY FILES "/root/repo/src/" FILES_MATCHING REGEX "/[^/]*\\.hpp$")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/qcongest" AND
     NOT IS_SYMLINK "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/qcongest")
    file(RPATH_CHECK
         FILE "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/qcongest"
         RPATH "")
  endif()
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/bin" TYPE EXECUTABLE FILES "/root/repo/build/tools/qcongest")
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/qcongest" AND
     NOT IS_SYMLINK "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/qcongest")
    if(CMAKE_INSTALL_DO_STRIP)
      execute_process(COMMAND "/usr/bin/strip" "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/qcongest")
    endif()
  endif()
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/qcongest/qcongestTargets.cmake")
    file(DIFFERENT _cmake_export_file_changed FILES
         "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/qcongest/qcongestTargets.cmake"
         "/root/repo/build/CMakeFiles/Export/b9305f07853c3ab02931507848ae776e/qcongestTargets.cmake")
    if(_cmake_export_file_changed)
      file(GLOB _cmake_old_config_files "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/qcongest/qcongestTargets-*.cmake")
      if(_cmake_old_config_files)
        string(REPLACE ";" ", " _cmake_old_config_files_text "${_cmake_old_config_files}")
        message(STATUS "Old export file \"$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/qcongest/qcongestTargets.cmake\" will be replaced.  Removing files [${_cmake_old_config_files_text}].")
        unset(_cmake_old_config_files_text)
        file(REMOVE ${_cmake_old_config_files})
      endif()
      unset(_cmake_old_config_files)
    endif()
    unset(_cmake_export_file_changed)
  endif()
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/qcongest" TYPE FILE FILES "/root/repo/build/CMakeFiles/Export/b9305f07853c3ab02931507848ae776e/qcongestTargets.cmake")
  if(CMAKE_INSTALL_CONFIG_NAME MATCHES "^([Rr][Ee][Ll][Ww][Ii][Tt][Hh][Dd][Ee][Bb][Ii][Nn][Ff][Oo])$")
    file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/qcongest" TYPE FILE FILES "/root/repo/build/CMakeFiles/Export/b9305f07853c3ab02931507848ae776e/qcongestTargets-relwithdebinfo.cmake")
  endif()
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/qcongest" TYPE FILE FILES "/root/repo/cmake/qcongestConfig.cmake")
endif()

if(CMAKE_INSTALL_COMPONENT)
  set(CMAKE_INSTALL_MANIFEST "install_manifest_${CMAKE_INSTALL_COMPONENT}.txt")
else()
  set(CMAKE_INSTALL_MANIFEST "install_manifest.txt")
endif()

string(REPLACE ";" "\n" CMAKE_INSTALL_MANIFEST_CONTENT
       "${CMAKE_INSTALL_MANIFEST_FILES}")
file(WRITE "/root/repo/build/${CMAKE_INSTALL_MANIFEST}"
     "${CMAKE_INSTALL_MANIFEST_CONTENT}")
