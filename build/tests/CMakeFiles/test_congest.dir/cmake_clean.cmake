file(REMOVE_RECURSE
  "CMakeFiles/test_congest.dir/test_congest.cpp.o"
  "CMakeFiles/test_congest.dir/test_congest.cpp.o.d"
  "test_congest"
  "test_congest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_congest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
