# Empty dependencies file for test_congest.
# This may be replaced when dependencies are built.
