file(REMOVE_RECURSE
  "CMakeFiles/test_congest2.dir/test_congest2.cpp.o"
  "CMakeFiles/test_congest2.dir/test_congest2.cpp.o.d"
  "test_congest2"
  "test_congest2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_congest2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
