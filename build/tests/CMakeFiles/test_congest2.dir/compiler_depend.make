# Empty compiler generated dependencies file for test_congest2.
# This may be replaced when dependencies are built.
