file(REMOVE_RECURSE
  "CMakeFiles/test_qsim2.dir/test_qsim2.cpp.o"
  "CMakeFiles/test_qsim2.dir/test_qsim2.cpp.o.d"
  "test_qsim2"
  "test_qsim2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qsim2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
