# Empty dependencies file for test_qsim2.
# This may be replaced when dependencies are built.
