# Empty dependencies file for test_qsim.
# This may be replaced when dependencies are built.
