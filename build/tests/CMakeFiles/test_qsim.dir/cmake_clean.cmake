file(REMOVE_RECURSE
  "CMakeFiles/test_qsim.dir/test_qsim.cpp.o"
  "CMakeFiles/test_qsim.dir/test_qsim.cpp.o.d"
  "test_qsim"
  "test_qsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
