# Empty dependencies file for test_graph2.
# This may be replaced when dependencies are built.
