file(REMOVE_RECURSE
  "CMakeFiles/test_graph2.dir/test_graph2.cpp.o"
  "CMakeFiles/test_graph2.dir/test_graph2.cpp.o.d"
  "test_graph2"
  "test_graph2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
