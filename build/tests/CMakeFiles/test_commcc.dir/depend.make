# Empty dependencies file for test_commcc.
# This may be replaced when dependencies are built.
