file(REMOVE_RECURSE
  "CMakeFiles/test_commcc.dir/test_commcc.cpp.o"
  "CMakeFiles/test_commcc.dir/test_commcc.cpp.o.d"
  "test_commcc"
  "test_commcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_commcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
