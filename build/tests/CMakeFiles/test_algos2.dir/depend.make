# Empty dependencies file for test_algos2.
# This may be replaced when dependencies are built.
