file(REMOVE_RECURSE
  "CMakeFiles/test_algos2.dir/test_algos2.cpp.o"
  "CMakeFiles/test_algos2.dir/test_algos2.cpp.o.d"
  "test_algos2"
  "test_algos2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algos2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
