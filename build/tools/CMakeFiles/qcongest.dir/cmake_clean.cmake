file(REMOVE_RECURSE
  "CMakeFiles/qcongest.dir/qcongest_cli.cpp.o"
  "CMakeFiles/qcongest.dir/qcongest_cli.cpp.o.d"
  "qcongest"
  "qcongest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcongest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
