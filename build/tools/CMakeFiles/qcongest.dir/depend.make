# Empty dependencies file for qcongest.
# This may be replaced when dependencies are built.
